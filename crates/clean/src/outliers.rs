//! Robust numeric outlier detection and repair.
//!
//! Uses the median/MAD rule (modified z-score): resilient to the very
//! outliers it hunts, unlike mean/std. Used on numeric columns such as
//! prices, where scraped sources contain fat-finger values.

/// Outlier analysis of a numeric column.
#[derive(Debug, Clone)]
pub struct OutlierReport {
    /// Median of the inputs.
    pub median: f64,
    /// Median absolute deviation (scaled by 1.4826 for normal consistency).
    pub mad: f64,
    /// Indices flagged as outliers.
    pub outliers: Vec<usize>,
}

fn median_of(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Detect outliers via modified z-score `0.6745·|x−median|/MAD > cutoff`.
/// A `cutoff` of 3.5 is the standard choice. Returns an empty report for
/// fewer than 4 observations (no robust scale estimate possible).
pub fn detect_outliers(values: &[f64], cutoff: f64) -> OutlierReport {
    if values.len() < 4 {
        return OutlierReport { median: f64::NAN, mad: f64::NAN, outliers: Vec::new() };
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let median = median_of(&sorted);
    let mut deviations: Vec<f64> = values.iter().map(|x| (x - median).abs()).collect();
    deviations.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let raw_mad = median_of(&deviations);
    let mad = raw_mad * 1.4826;
    let outliers = if raw_mad == 0.0 {
        // Over half the values identical: anything different is an outlier.
        values
            .iter()
            .enumerate()
            .filter(|(_, x)| (**x - median).abs() > 0.0)
            .map(|(i, _)| i)
            .collect()
    } else {
        values
            .iter()
            .enumerate()
            .filter(|(_, x)| 0.6745 * (**x - median).abs() / raw_mad > cutoff)
            .map(|(i, _)| i)
            .collect()
    };
    OutlierReport { median, mad, outliers }
}

/// Repair strategy: replace each flagged value with the column median.
/// Returns the repaired copy and the number of repairs.
pub fn repair_with_median(values: &[f64], cutoff: f64) -> (Vec<f64>, usize) {
    let report = detect_outliers(values, cutoff);
    if report.outliers.is_empty() {
        return (values.to_vec(), 0);
    }
    let mut out = values.to_vec();
    for &i in &report.outliers {
        out[i] = report.median;
    }
    let n = report.outliers.len();
    (out, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_obvious_outlier() {
        let xs = [25.0, 27.0, 30.0, 28.0, 26.0, 29.0, 2700.0];
        let r = detect_outliers(&xs, 3.5);
        assert_eq!(r.outliers, vec![6]);
        assert!((r.median - 28.0).abs() < 1.01);
    }

    #[test]
    fn clean_column_has_no_outliers() {
        let xs = [25.0, 27.0, 30.0, 28.0, 26.0, 29.0];
        assert!(detect_outliers(&xs, 3.5).outliers.is_empty());
    }

    #[test]
    fn tiny_columns_are_left_alone() {
        assert!(detect_outliers(&[1.0, 1000.0], 3.5).outliers.is_empty());
        assert!(detect_outliers(&[], 3.5).outliers.is_empty());
    }

    #[test]
    fn constant_column_with_one_deviant() {
        let xs = [5.0, 5.0, 5.0, 5.0, 9.0];
        let r = detect_outliers(&xs, 3.5);
        assert_eq!(r.outliers, vec![4], "zero-MAD column flags any deviation");
    }

    #[test]
    fn repair_replaces_with_median() {
        let xs = [25.0, 27.0, 30.0, 28.0, 26.0, 29.0, 2700.0];
        let (fixed, n) = repair_with_median(&xs, 3.5);
        assert_eq!(n, 1);
        assert!(fixed[6] < 100.0);
        assert_eq!(fixed[0], 25.0, "inliers untouched");
        let (same, n0) = repair_with_median(&xs[..6], 3.5);
        assert_eq!(n0, 0);
        assert_eq!(same, &xs[..6]);
    }

    #[test]
    fn robust_to_outlier_mass() {
        // 20% outliers would wreck mean/std; median/MAD holds.
        let mut xs = vec![50.0; 16];
        xs.extend([5000.0, 6000.0, 7000.0, 8000.0]);
        let r = detect_outliers(&xs, 3.5);
        assert_eq!(r.outliers.len(), 4);
        assert!(r.outliers.iter().all(|&i| i >= 16));
    }
}
