//! The ML text-cleaning / pre-processing extension.
//!
//! The paper's §IV trains an ML classifier on web text and uses it "for
//! deduplication and data cleaning"; §1's pipeline pre-processes and filters
//! WEBINSTANCE fragments before import. This module is the cleaning half: a
//! naive-Bayes filter that separates content fragments from web junk
//! (ads, navigation chrome, cookie banners) so that only real prose reaches
//! the domain parser.

use datatamer_ml::features::{SparseVec, Vocabulary};
use datatamer_ml::NaiveBayes;

/// Built-in junk exemplars (ad / chrome / boilerplate language).
pub const JUNK_SEEDS: &[&str] = &[
    "click here to subscribe to our newsletter today",
    "accept cookies to continue browsing this site",
    "advertisement sponsored content buy now limited offer",
    "sign up login register forgot password",
    "terms of service privacy policy all rights reserved",
    "follow us on social media like and share",
    "free shipping order now discount code checkout cart",
    "enable javascript to view this page correctly",
    "related articles you may also like trending now",
    "download our app rate us leave a review",
];

/// Built-in content exemplars (editorial prose about shows).
pub const CONTENT_SEEDS: &[&str] = &[
    "the musical grossed well during previews at the theatre",
    "critics praised the award-winning import from london",
    "the production opened on broadway to strong reviews",
    "tickets for the evening performance sold out quickly",
    "the revival stars a celebrated stage actress",
    "box office receipts climbed ninety percent of the maximum",
    "the playwright discussed the new staging with reporters",
    "audiences gathered near times square before curtain",
    "the touring company announced additional cities this fall",
    "the composer and director spoke after the matinee",
];

/// A trained junk-vs-content fragment classifier.
pub struct TextCleaner {
    vocab: Vocabulary,
    model: NaiveBayes,
}

/// Classes used by the cleaner.
const CLASS_JUNK: usize = 0;
const CLASS_CONTENT: usize = 1;

impl TextCleaner {
    /// Train from explicit junk/content exemplars.
    pub fn train(junk: &[&str], content: &[&str]) -> Self {
        assert!(!junk.is_empty() && !content.is_empty(), "need both classes");
        let mut vocab = Vocabulary::new();
        for t in junk.iter().chain(content.iter()) {
            vocab.fit_doc(t);
        }
        let mut examples: Vec<(SparseVec, usize)> = Vec::with_capacity(junk.len() + content.len());
        for t in junk {
            examples.push((vocab.counts(t), CLASS_JUNK));
        }
        for t in content {
            examples.push((vocab.counts(t), CLASS_CONTENT));
        }
        let model = NaiveBayes::train(&examples, 2, vocab.len(), 0.5);
        TextCleaner { vocab, model }
    }

    /// Train from the built-in seed corpora.
    pub fn with_builtin_seeds() -> Self {
        Self::train(JUNK_SEEDS, CONTENT_SEEDS)
    }

    /// True when the fragment looks like junk/boilerplate.
    pub fn is_junk(&self, fragment: &str) -> bool {
        self.model.predict(&self.vocab.counts(fragment)) == CLASS_JUNK
    }

    /// Filter a fragment stream, keeping content. Returns `(kept, dropped)`.
    pub fn filter<'a>(&self, fragments: &[&'a str]) -> (Vec<&'a str>, usize) {
        let mut kept = Vec::with_capacity(fragments.len());
        let mut dropped = 0;
        for f in fragments {
            if self.is_junk(f) {
                dropped += 1;
            } else {
                kept.push(*f);
            }
        }
        (kept, dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_cleaner_separates_obvious_cases() {
        let cleaner = TextCleaner::with_builtin_seeds();
        assert!(cleaner.is_junk("subscribe now and accept cookies for free shipping"));
        assert!(!cleaner.is_junk("the musical grossed 960,998 during previews on broadway"));
        assert!(!cleaner.is_junk("Matilda an award-winning import from London opened at the theatre"));
    }

    #[test]
    fn filter_counts_drops() {
        let cleaner = TextCleaner::with_builtin_seeds();
        let fragments = [
            "the production opened to strong reviews at the theatre",
            "click here to subscribe and accept cookies now",
            "tickets for the performance sold out during previews",
        ];
        let (kept, dropped) = cleaner.filter(&fragments);
        assert_eq!(dropped, 1);
        assert_eq!(kept.len(), 2);
        assert!(kept.iter().all(|f| !f.contains("subscribe")));
    }

    #[test]
    fn unknown_vocabulary_defaults_reasonably() {
        let cleaner = TextCleaner::with_builtin_seeds();
        // Entirely out-of-vocabulary text: must not panic; either class ok.
        let _ = cleaner.is_junk("zzz qqq xxx yyy");
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn empty_class_panics() {
        TextCleaner::train(&[], &["x"]);
    }

    #[test]
    fn custom_seeds_override_domain() {
        let cleaner = TextCleaner::train(
            &["lorem ipsum dolor sit amet"],
            &["real estate listings downtown"],
        );
        assert!(cleaner.is_junk("lorem ipsum dolor"));
        assert!(!cleaner.is_junk("downtown real estate"));
    }
}
