//! Data cleaning and transformation.
//!
//! Data Tamer includes "a capability for data cleaning and transformations
//! (for example to translate euros into dollars)". This crate implements
//! that engine plus the paper's "machine learning text data cleaning and
//! pre-processing extension":
//!
//! * [`transforms`] — typed value transformations: currency conversion
//!   (EUR→USD, the paper's canonical example), date normalisation, unit
//!   stripping, whitespace repair.
//! * [`nulls`] — canonicalising the many spellings of "missing".
//! * [`outliers`] — robust (median/MAD) numeric outlier detection & repair.
//! * [`rules`] — the per-attribute cleaning rule engine with change
//!   accounting.
//! * [`textclean`] — the ML fragment cleaner: a naive-Bayes junk /
//!   boilerplate filter applied before parsing (the paper's pre-processing
//!   step for web text).

pub mod nulls;
pub mod outliers;
pub mod rules;
pub mod textclean;
pub mod transforms;

pub use outliers::{detect_outliers, OutlierReport};
pub use rules::{clean_sources_parallel, CleaningEngine, CleaningReport, Rule};
pub use textclean::TextCleaner;
pub use transforms::Transform;
