//! The per-attribute cleaning rule engine.

use datatamer_model::Record;
use rayon::prelude::*;

use crate::nulls;
use crate::transforms::Transform;

/// A cleaning rule: which attributes it covers and what it does.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Attribute the rule applies to (exact name match).
    pub attribute: String,
    /// The transformation.
    pub transform: Transform,
}

impl Rule {
    /// Convenience constructor.
    pub fn new(attribute: impl Into<String>, transform: Transform) -> Self {
        Rule { attribute: attribute.into(), transform }
    }
}

/// Change accounting for a cleaning run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CleaningReport {
    /// Records visited.
    pub records: usize,
    /// Null-ish strings canonicalised.
    pub nulls_canonicalized: usize,
    /// Rule applications that changed a value.
    pub values_transformed: usize,
}

impl CleaningReport {
    /// Fold another report's counts into this one (parallel-chunk merge).
    pub fn merge(&mut self, other: &CleaningReport) {
        self.records += other.records;
        self.nulls_canonicalized += other.nulls_canonicalized;
        self.values_transformed += other.values_transformed;
    }
}

/// The engine: null canonicalisation (always on) plus ordered rules.
#[derive(Debug, Clone, Default)]
pub struct CleaningEngine {
    rules: Vec<Rule>,
}

impl CleaningEngine {
    /// An engine with no rules (null canonicalisation only).
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a rule (rules run in insertion order; later rules see the
    /// output of earlier ones).
    pub fn add_rule(&mut self, rule: Rule) -> &mut Self {
        self.rules.push(rule);
        self
    }

    /// The standard engine for Broadway-domain records: prices to USD,
    /// opening dates to the paper's `M/D/YYYY`, whitespace tidied on every
    /// listed text attribute.
    pub fn broadway(price_attr: &str, date_attr: &str, text_attrs: &[&str]) -> Self {
        let mut e = CleaningEngine::new();
        e.add_rule(Rule::new(price_attr, Transform::CurrencyToUsd));
        e.add_rule(Rule::new(date_attr, Transform::DateToUs));
        for a in text_attrs {
            e.add_rule(Rule::new(*a, Transform::TidyWhitespace));
        }
        e
    }

    /// Number of rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Clean one record in place; counts land in `report`.
    pub fn clean_record(&self, record: &mut Record, report: &mut CleaningReport) {
        report.records += 1;
        // Pass 1: null canonicalisation over all fields.
        let names: Vec<String> = record.field_names().map(str::to_owned).collect();
        for name in &names {
            if let Some(v) = record.get(name) {
                if let Some(replacement) = nulls::canonicalize(v) {
                    record.set(name.clone(), replacement);
                    report.nulls_canonicalized += 1;
                }
            }
        }
        // Pass 2: rules in order.
        for rule in &self.rules {
            if let Some(v) = record.get(&rule.attribute) {
                if let Some(new_value) = rule.transform.apply(v) {
                    if *v != new_value {
                        record.set(rule.attribute.clone(), new_value);
                        report.values_transformed += 1;
                    }
                }
            }
        }
    }

    /// Clean a batch, returning the report.
    pub fn clean_all(&self, records: &mut [Record]) -> CleaningReport {
        let mut report = CleaningReport::default();
        for r in records.iter_mut() {
            self.clean_record(r, &mut report);
        }
        report
    }

    /// Clean a batch with the records fanned out across the rayon thread
    /// team. Record mutations are per-record (no cross-record state), so
    /// the cleaned values are identical to [`Self::clean_all`] at any
    /// thread count; per-chunk reports merge into one.
    pub fn clean_all_parallel(&self, records: &mut [Record]) -> CleaningReport {
        let chunk_reports: Vec<CleaningReport> = records
            .par_iter_mut()
            .map(|r| {
                let mut report = CleaningReport::default();
                self.clean_record(r, &mut report);
                report
            })
            .collect();
        let mut total = CleaningReport::default();
        for r in chunk_reports {
            total.merge(&r);
        }
        total
    }
}

/// Clean many sources concurrently: each `(name, records)` job runs the
/// engine built by `engine_for` over its records, in parallel across
/// sources (the paper's per-source curation step). Reports come back in
/// job order.
///
/// Each job's records clean through [`CleaningEngine::clean_all_parallel`],
/// so a single oversized source still spreads across the thread team (the
/// rayon shim runs a lone job inline, leaving the full width to the
/// per-record fan-out).
pub fn clean_sources_parallel(
    jobs: &mut [(String, Vec<Record>)],
    engine_for: impl Fn(&str) -> CleaningEngine + Sync,
) -> Vec<(String, CleaningReport)> {
    jobs.par_iter_mut()
        .map(|(name, records)| {
            let engine = engine_for(name);
            let report = engine.clean_all_parallel(records);
            (name.clone(), report)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use datatamer_model::{RecordId, SourceId, Value};

    fn rec(fields: Vec<(&str, &str)>) -> Record {
        Record::from_pairs(
            SourceId(0),
            RecordId(0),
            fields.into_iter().map(|(k, v)| (k, Value::from(v))).collect(),
        )
    }

    #[test]
    fn broadway_engine_cleans_the_paper_cases() {
        let engine = CleaningEngine::broadway("price", "first", &["venue"]);
        let mut records = vec![
            rec(vec![("price", "€30"), ("first", "2013-03-04"), ("venue", "  Shubert  Theatre ")]),
            rec(vec![("price", "$27"), ("first", "3/4/2013"), ("venue", "Gershwin")]),
            rec(vec![("price", "N/A"), ("first", "-"), ("venue", "Palace")]),
        ];
        let report = engine.clean_all(&mut records);
        assert_eq!(records[0].get_text("price").as_deref(), Some("$39"));
        assert_eq!(records[0].get_text("first").as_deref(), Some("3/4/2013"));
        assert_eq!(records[0].get_text("venue").as_deref(), Some("Shubert Theatre"));
        // Already-clean values untouched.
        assert_eq!(records[1].get_text("price").as_deref(), Some("$27"));
        // Nulls canonicalised before rules, so CurrencyToUsd never sees "N/A".
        assert!(records[2].get("price").unwrap().is_null());
        assert!(records[2].get("first").unwrap().is_null());
        assert_eq!(report.records, 3);
        assert_eq!(report.nulls_canonicalized, 2);
        assert_eq!(report.values_transformed, 3, "{report:?}");
    }

    #[test]
    fn rules_apply_in_order() {
        let mut engine = CleaningEngine::new();
        engine
            .add_rule(Rule::new("x", Transform::TidyWhitespace))
            .add_rule(Rule::new("x", Transform::Uppercase));
        let mut r = rec(vec![("x", " a  b ")]);
        let mut report = CleaningReport::default();
        engine.clean_record(&mut r, &mut report);
        assert_eq!(r.get_text("x").as_deref(), Some("A B"));
        assert_eq!(report.values_transformed, 2);
        assert_eq!(engine.rule_count(), 2);
    }

    #[test]
    fn engine_without_rules_still_fixes_nulls() {
        let engine = CleaningEngine::new();
        let mut r = rec(vec![("a", "n/a"), ("b", "keep")]);
        let mut report = CleaningReport::default();
        engine.clean_record(&mut r, &mut report);
        assert!(r.get("a").unwrap().is_null());
        assert_eq!(r.get_text("b").as_deref(), Some("keep"));
        assert_eq!(report.nulls_canonicalized, 1);
        assert_eq!(report.values_transformed, 0);
    }

    #[test]
    fn missing_attributes_are_skipped() {
        let engine = CleaningEngine::broadway("price", "first", &[]);
        let mut r = rec(vec![("other", "€30")]);
        let mut report = CleaningReport::default();
        engine.clean_record(&mut r, &mut report);
        assert_eq!(r.get_text("other").as_deref(), Some("€30"), "rule scoped to 'price'");
        assert_eq!(report.values_transformed, 0);
    }
}
