//! Fixture-driven tests: every rule family fires on a positive snippet and
//! stays quiet on waived, test-only, string-literal, and comment occurrences.
//!
//! Fixtures are inline sources run through [`lint_source`] with crafted
//! workspace-relative paths, so path scoping (determinism crates, the
//! storage panic-freedom family, exempt dirs) is exercised for real.

use datatamer_lint::rules::lint_source;
use datatamer_lint::Config;

/// Active (unwaived) rule names for `source` linted as `rel`.
fn active(rel: &str, source: &str) -> Vec<&'static str> {
    lint_source(rel, source, &Config::default())
        .iter()
        .filter(|f| f.waived.is_none())
        .map(|f| f.rule)
        .collect()
}

fn active_lines(rel: &str, source: &str, rule: &str) -> Vec<u32> {
    lint_source(rel, source, &Config::default())
        .iter()
        .filter(|f| f.waived.is_none() && f.rule == rule)
        .map(|f| f.line)
        .collect()
}

// --- map-iter ---------------------------------------------------------

#[test]
fn map_iter_fires_on_order_methods() {
    let src = r#"
use std::collections::HashMap;
fn f() {
    let mut m: HashMap<String, f64> = HashMap::new();
    let mut total = 0.0;
    for (_, v) in m.iter() { total += v; }
}
"#;
    assert_eq!(active("crates/core/src/x.rs", src), vec!["map-iter"]);
}

#[test]
fn map_iter_fires_on_bare_for_loop() {
    let src = r#"
use std::collections::HashSet;
fn f() {
    let set: HashSet<u32> = HashSet::new();
    for v in &set {
        println!("{v}");
    }
}
"#;
    assert_eq!(active("src/main.rs", src), vec!["map-iter"]);
}

#[test]
fn map_iter_detects_let_initializer() {
    // No type annotation: the rhs `HashMap::new()` records the ident.
    let src = r#"
fn f() {
    let m = std::collections::HashMap::new();
    m.insert(1, 2);
    let _: Vec<_> = m.keys().collect();
}
"#;
    assert_eq!(active("crates/entity/src/x.rs", src), vec!["map-iter"]);
}

#[test]
fn map_iter_quiet_outside_determinism_paths() {
    let src = r#"
use std::collections::HashMap;
fn f(m: &HashMap<u32, u32>) -> Vec<u32> { m.values().copied().collect() }
"#;
    // `crates/model` is not in the determinism family; `crates/bench` and
    // `shims` are explicitly exempt.
    assert!(active("crates/model/src/x.rs", src).is_empty());
    assert!(active("crates/bench/src/x.rs", src).is_empty());
    assert!(active("shims/rand/src/lib.rs", src).is_empty());
    // The same source in a determinism crate fires.
    assert_eq!(active("crates/sim/src/x.rs", src), vec!["map-iter"]);
}

#[test]
fn map_iter_quiet_on_vec_receivers() {
    let src = r#"
fn f() {
    let v: Vec<u32> = Vec::new();
    for x in v.iter() { println!("{x}"); }
    let _: u32 = v.into_iter().sum();
}
"#;
    assert!(active("crates/core/src/x.rs", src).is_empty());
}

#[test]
fn map_iter_quiet_in_strings_and_comments() {
    let src = r##"
// for (k, v) in map.iter() { ... } — prose, not code
fn f() -> &'static str {
    let _ = "map.keys() in a string";
    let _ = r#"for x in &set { }"#;
    "ok"
}
"##;
    assert!(active("crates/core/src/x.rs", src).is_empty());
}

#[test]
fn map_iter_quiet_under_cfg_test() {
    let src = r#"
use std::collections::HashMap;
#[cfg(test)]
mod tests {
    use super::*;
    #[test]
    fn t() {
        let m: HashMap<u32, u32> = HashMap::new();
        for (_, v) in m.iter() { assert!(*v > 0); }
    }
}
"#;
    assert!(active("crates/core/src/x.rs", src).is_empty());
}

#[test]
fn map_iter_quiet_in_tests_dir() {
    let src = r#"
use std::collections::HashMap;
fn f(m: HashMap<u32, u32>) { for v in m.values() {} }
"#;
    assert!(active("crates/core/tests/x.rs", src).is_empty());
}

// --- waivers ----------------------------------------------------------

#[test]
fn trailing_waiver_silences_its_line() {
    let src = r#"
use std::collections::HashMap;
fn f(m: &HashMap<u32, u32>) -> usize {
    m.values().count() // dtlint::allow(map-iter, reason = "order-independent count")
}
"#;
    let findings = lint_source("crates/core/src/x.rs", src, &Config::default());
    assert_eq!(findings.len(), 1);
    assert!(findings[0].waived.is_some(), "trailing waiver must apply: {findings:?}");
}

#[test]
fn standalone_waiver_covers_next_code_line() {
    let src = r#"
use std::collections::HashMap;
fn f(m: HashMap<u32, u32>) -> Vec<(u32, u32)> {
    let mut v: Vec<_> = m
        // dtlint::allow(map-iter, reason = "sorted by (key, value) on the next line")
        .into_iter()
        .collect();
    v.sort_unstable();
    v
}
"#;
    let findings = lint_source("crates/core/src/x.rs", src, &Config::default());
    assert_eq!(findings.len(), 1);
    assert!(findings[0].waived.is_some(), "standalone waiver must apply: {findings:?}");
}

#[test]
fn waiver_without_reason_is_rejected_and_site_still_fires() {
    let src = r#"
use std::collections::HashMap;
fn f(m: &HashMap<u32, u32>) -> usize {
    m.values().count() // dtlint::allow(map-iter)
}
"#;
    let rules = active("crates/core/src/x.rs", src);
    assert!(rules.contains(&"bad-waiver"), "missing reason must flag: {rules:?}");
    assert!(rules.contains(&"map-iter"), "reasonless waiver must not silence: {rules:?}");
}

#[test]
fn waiver_with_unknown_rule_is_flagged() {
    let src = r#"
fn f() {} // dtlint::allow(no-such-rule, reason = "typo")
"#;
    assert_eq!(active("crates/core/src/x.rs", src), vec!["bad-waiver"]);
}

#[test]
fn waiver_for_wrong_rule_does_not_silence() {
    let src = r#"
use std::collections::HashMap;
fn f(m: &HashMap<u32, u32>) -> usize {
    m.values().count() // dtlint::allow(panic-path, reason = "wrong family")
}
"#;
    assert!(active("crates/core/src/x.rs", src).contains(&"map-iter"));
}

#[test]
fn prose_mentioning_the_syntax_is_not_a_waiver() {
    // Doc prose explaining `dtlint::allow(<rule>, …)` mid-sentence must
    // neither waive anything nor fire bad-waiver.
    let src = r#"
//! Use a `// dtlint::allow(<rule>, reason = "…")` comment to waive.
fn f() {}
"#;
    assert!(active("crates/core/src/x.rs", src).is_empty());
}

#[test]
fn baseline_waiver_from_config_applies() {
    // `Config::parse` is explicit — it does not inherit default paths —
    // so the fixture config declares its own determinism family.
    let cfg = Config::parse(
        r#"
[determinism]
paths = ["crates/core"]
exempt = []

[[allow]]
path = "crates/core/src/legacy.rs"
rule = "map-iter"
reason = "grandfathered; tracked in the determinism backlog"
"#,
    )
    .unwrap();
    let src = r#"
use std::collections::HashMap;
fn f(m: &HashMap<u32, u32>) -> usize { m.values().count() }
"#;
    let findings = lint_source("crates/core/src/legacy.rs", src, &cfg);
    assert_eq!(findings.len(), 1);
    assert!(findings[0].waived.as_deref().unwrap_or("").contains("dtlint.toml"));
    // A different file is untouched by the baseline entry.
    let other = lint_source("crates/core/src/other.rs", src, &cfg);
    assert!(other[0].waived.is_none());
}

// --- wall-clock / thread-spawn / env-read ------------------------------

#[test]
fn wall_clock_fires_in_pipeline_crates() {
    let src = r#"
fn f() -> std::time::Instant { std::time::Instant::now() }
fn g() -> std::time::SystemTime { std::time::SystemTime::now() }
"#;
    assert_eq!(
        active("crates/core/src/x.rs", src),
        vec!["wall-clock", "wall-clock"]
    );
    // Exempt in the bench crate, which exists to measure wall time.
    assert!(active("crates/bench/src/x.rs", src).is_empty());
}

#[test]
fn thread_spawn_and_env_read_fire() {
    let src = r#"
fn f() {
    std::thread::spawn(|| {});
    let _ = std::env::var("HOME");
    let _ = std::env::temp_dir();
}
"#;
    let rules = active("crates/storage/src/x.rs", src);
    assert!(rules.contains(&"thread-spawn"), "{rules:?}");
    assert_eq!(rules.iter().filter(|r| **r == "env-read").count(), 2, "{rules:?}");
}

#[test]
fn clock_in_tests_is_fine() {
    let src = r#"
#[cfg(test)]
mod tests {
    #[test]
    fn t() { let _ = std::time::Instant::now(); }
}
"#;
    assert!(active("crates/core/src/x.rs", src).is_empty());
}

// --- panic-path --------------------------------------------------------

#[test]
fn panic_path_fires_only_in_storage() {
    let src = r#"
fn f(v: Option<u32>) -> u32 { v.unwrap() }
fn g(v: Option<u32>) -> u32 { v.expect("present") }
fn h() { panic!("boom"); }
fn i() { unreachable!(); }
fn j(s: &[u32]) -> u32 { s[0] }
"#;
    let rules = active("crates/storage/src/x.rs", src);
    assert_eq!(rules.iter().filter(|r| **r == "panic-path").count(), 5, "{rules:?}");
    // The same source outside the panic-freedom family is quiet.
    assert!(active("crates/core/src/x.rs", src).is_empty());
}

#[test]
fn panic_path_quiet_in_storage_tests() {
    let src = r#"
#[cfg(test)]
mod tests {
    #[test]
    fn t() { assert_eq!(Some(1).unwrap(), 1); }
}
"#;
    assert!(active("crates/storage/src/x.rs", src).is_empty());
}

#[test]
fn panic_path_ignores_variable_indexing() {
    // Only literal-index expressions are flagged; `s[i]` has a bound that
    // the surrounding code usually established.
    let src = r#"
fn f(s: &[u32], i: usize) -> u32 { s[i] }
"#;
    assert!(active("crates/storage/src/x.rs", src).is_empty());
}

// --- unsafe-block ------------------------------------------------------

#[test]
fn unsafe_fires_everywhere_by_default() {
    let src = r#"
fn f(p: *const u32) -> u32 { unsafe { *p } }
"#;
    assert_eq!(active("crates/model/src/x.rs", src), vec!["unsafe-block"]);
    assert_eq!(active("crates/core/src/x.rs", src), vec!["unsafe-block"]);
}

#[test]
fn unsafe_allowlist_exempts_path() {
    let cfg = Config::parse(
        r#"
[unsafe_audit]
allow = ["shims/parking_lot"]
"#,
    )
    .unwrap();
    let src = "fn f(p: *const u32) -> u32 { unsafe { *p } }";
    assert!(lint_source("shims/parking_lot/src/lib.rs", src, &cfg)
        .iter()
        .all(|f| f.rule != "unsafe-block"));
    assert!(lint_source("crates/core/src/x.rs", src, &cfg)
        .iter()
        .any(|f| f.rule == "unsafe-block"));
}

// --- spans -------------------------------------------------------------

#[test]
fn findings_carry_correct_lines() {
    let src = "\nfn f(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n";
    assert_eq!(active_lines("crates/storage/src/x.rs", src, "panic-path"), vec![3]);
}
