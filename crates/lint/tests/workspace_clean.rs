//! The self-test behind CI's `dtlint --deny` step: the workspace itself
//! must be lint-clean. Any new order-dependent iteration, panic path, or
//! unsafe block either gets fixed or gets an explicit, reasoned waiver —
//! this test is what makes that a build break instead of a convention.

use std::path::Path;

use datatamer_lint::{load_config, run_workspace};

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let cfg = load_config(&root).expect("dtlint.toml parses");
    let report = run_workspace(&root, &cfg).expect("workspace walk succeeds");
    assert!(report.files_scanned > 100, "walk found the workspace ({} files)", report.files_scanned);
    let active: Vec<String> = report
        .active()
        .map(|f| format!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message))
        .collect();
    assert!(
        active.is_empty(),
        "workspace must be dtlint-clean; fix or waive (with a reason):\n{}",
        active.join("\n")
    );
}
