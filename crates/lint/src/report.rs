//! Human and JSON rendering of a lint run.

use std::collections::BTreeMap;

use crate::rules::Finding;

/// Aggregated outcome of linting a file set.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, waived ones included, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
}

impl Report {
    pub fn push_file(&mut self, findings: Vec<Finding>) {
        self.findings.extend(findings);
        self.files_scanned += 1;
    }

    pub fn finalize(&mut self) {
        self.findings.sort_by(|a, b| {
            a.file.cmp(&b.file).then(a.line.cmp(&b.line)).then(a.rule.cmp(b.rule))
        });
    }

    /// Findings not covered by a waiver — the ones that gate CI.
    pub fn active(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.waived.is_none())
    }

    pub fn active_count(&self) -> usize {
        self.active().count()
    }

    pub fn waived_count(&self) -> usize {
        self.findings.len() - self.active_count()
    }

    /// Per-rule counts over active findings.
    pub fn counts(&self) -> BTreeMap<&'static str, usize> {
        let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
        for f in self.active() {
            *counts.entry(f.rule).or_insert(0) += 1;
        }
        counts
    }

    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in self.active() {
            out.push_str(&format!("{}:{}: [{}] {}\n", f.file, f.line, f.rule, f.message));
        }
        let counts = self.counts();
        let by_rule = counts
            .iter()
            .map(|(r, n)| format!("{r}: {n}"))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "dtlint: {} finding{} ({}), {} waived, {} files scanned\n",
            self.active_count(),
            if self.active_count() == 1 { "" } else { "s" },
            if by_rule.is_empty() { "clean".to_owned() } else { by_rule },
            self.waived_count(),
            self.files_scanned,
        ));
        out
    }

    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [");
        for (i, f) in self.active().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
                json_str(f.rule),
                json_str(&f.file),
                f.line,
                json_str(&f.message)
            ));
        }
        out.push_str("\n  ],\n  \"counts\": {");
        for (i, (rule, n)) in self.counts().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {n}", json_str(rule)));
        }
        out.push_str(&format!(
            "\n  }},\n  \"waived\": {},\n  \"files_scanned\": {}\n}}\n",
            self.waived_count(),
            self.files_scanned
        ));
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, line: u32, waived: bool) -> Finding {
        Finding {
            rule: "map-iter",
            file: file.to_owned(),
            line,
            message: "msg with \"quotes\"".to_owned(),
            waived: waived.then(|| "reason".to_owned()),
        }
    }

    #[test]
    fn human_and_json_agree_on_counts() {
        let mut r = Report::default();
        r.push_file(vec![finding("b.rs", 2, false), finding("a.rs", 1, true)]);
        r.finalize();
        assert_eq!(r.active_count(), 1);
        assert_eq!(r.waived_count(), 1);
        let human = r.render_human();
        assert!(human.contains("b.rs:2: [map-iter]"));
        assert!(human.contains("1 finding (map-iter: 1), 1 waived"));
        let json = r.render_json();
        assert!(json.contains("\"map-iter\": 1"));
        assert!(json.contains("\\\"quotes\\\""));
        assert!(json.contains("\"waived\": 1"));
    }
}
