//! The rule engine: token-sequence rules over one lexed file.
//!
//! Three rule families, all keyed off `dtlint.toml` path prefixes:
//!
//! * **determinism** — `map-iter` (order-dependent iteration over
//!   identifiers declared as `HashMap`/`HashSet` in the same file),
//!   `wall-clock` (`Instant::now` / `SystemTime::now`), `thread-spawn`
//!   (`thread::spawn` outside the rayon pool), `env-read`
//!   (`env::var*` / `env::temp_dir`). Fused output must be byte-identical
//!   across thread counts, backends, and incremental-vs-rebuild runs;
//!   every one of these constructs can silently break that.
//! * **panic-freedom** — `panic-path` (`.unwrap()` / `.expect(` /
//!   `panic!` / `unreachable!` / `todo!` / `unimplemented!` / indexing by
//!   integer literal) in crates whose IO paths are `Result`-typed.
//! * **unsafe-audit** — `unsafe-block`: `unsafe` anywhere outside the
//!   config allowlist (checked in test code too — an audit, not a style
//!   rule).
//!
//! Test code is exempt from the first two families: `#[cfg(test)]` /
//! `#[test]` items, `mod tests` blocks, and whole files under `tests/`,
//! `benches/`, or `examples/` directories. Any finding can be waived
//! inline with `// dtlint::allow(<rule>, reason = "…")` — the reason is
//! mandatory (`bad-waiver` fires otherwise) — or path-scoped via
//! `[[allow]]` entries in `dtlint.toml`.
//!
//! `map-iter` is a two-pass heuristic, not type inference: pass one
//! records every identifier annotated `: …HashMap/HashSet…` (let
//! bindings, struct fields, fn params) or `let`-bound to an expression
//! mentioning `HashMap`/`HashSet`; pass two flags order-dependent
//! methods and bare `for … in` loops whose receiver's final path segment
//! is such an identifier. Maps constructed behind helper functions in
//! another file escape it — the runtime equivalence suites remain the
//! backstop; dtlint makes the *local* hazard impossible to miss.

use std::collections::BTreeSet;

use crate::config::{path_under, Config};
use crate::lexer::{lex, Lexed, Tok, TokKind};

/// Every rule dtlint knows, with a one-line description (for `--list-rules`).
pub const RULES: &[(&str, &str)] = &[
    ("map-iter", "order-dependent iteration over a HashMap/HashSet in an output-affecting crate"),
    ("wall-clock", "Instant::now / SystemTime::now in a pipeline crate"),
    ("thread-spawn", "raw thread::spawn in a pipeline crate (use the rayon pool)"),
    ("env-read", "environment read (env::var*, env::temp_dir) in a pipeline crate"),
    ("panic-path", "unwrap/expect/panic!/unreachable!/indexing-by-literal on a panic-free path"),
    ("unsafe-block", "`unsafe` outside the dtlint.toml allowlist"),
    ("bad-waiver", "malformed dtlint::allow directive (unknown rule or missing reason)"),
];

pub fn known_rule(name: &str) -> bool {
    RULES.iter().any(|(r, _)| *r == name)
}

/// One finding, waived or not.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    pub line: u32,
    pub message: String,
    /// `Some(reason)` when an inline or baseline waiver covers the site.
    pub waived: Option<String>,
}

/// Lint one file's source. `rel` is the workspace-relative path (used for
/// family scoping and reported spans).
pub fn lint_source(rel: &str, source: &str, cfg: &Config) -> Vec<Finding> {
    let lexed = lex(source);
    let toks = &lexed.toks;
    let test_mask = test_region_mask(toks);
    let file_is_test = file_is_test_context(rel);

    let determinism_on = Config::in_any(&cfg.determinism_paths, rel)
        && !Config::in_any(&cfg.determinism_exempt, rel);
    let panic_on = Config::in_any(&cfg.panic_paths, rel)
        && !Config::in_any(&cfg.determinism_exempt, rel);
    let unsafe_on = !Config::in_any(&cfg.unsafe_allow, rel);

    let mut findings: Vec<Finding> = Vec::new();
    let mut push = |rule: &'static str, line: u32, message: String| {
        findings.push(Finding { rule, file: rel.to_owned(), line, message, waived: None });
    };

    // Waiver hygiene fires regardless of family scoping.
    for w in &lexed.waivers {
        if !w.well_formed {
            push("bad-waiver", w.line, "malformed dtlint::allow directive".to_owned());
        } else if !known_rule(&w.rule) {
            push("bad-waiver", w.line, format!("dtlint::allow names unknown rule `{}`", w.rule));
        } else if !w.has_reason {
            push(
                "bad-waiver",
                w.line,
                format!("dtlint::allow({}) is missing its mandatory reason = \"…\"", w.rule),
            );
        }
    }

    let hash_idents = if determinism_on { collect_hash_idents(toks) } else { BTreeSet::new() };

    for i in 0..toks.len() {
        let in_test = file_is_test || test_mask[i];
        let t = &toks[i];

        // --- unsafe-audit (applies everywhere, tests included) ---
        if unsafe_on && t.is_ident("unsafe") {
            push("unsafe-block", t.line, "`unsafe` outside the dtlint.toml allowlist".to_owned());
        }

        if in_test {
            continue;
        }

        // --- determinism family ---
        if determinism_on {
            if let Some((recv, method)) = order_method_at(toks, i, &hash_idents) {
                // Anchor at the method token, not the receiver: in a
                // multi-line chain that is the line a trailing waiver sits on.
                push(
                    "map-iter",
                    toks[i + 2].line,
                    format!(
                        "`{recv}.{method}()` iterates a HashMap/HashSet — order is \
                         unspecified; sort first, use a BTree collection, or waive with \
                         a reason"
                    ),
                );
            }
            if t.is_ident("for") {
                if let Some(recv) = for_in_hash_receiver(toks, i, &hash_idents) {
                    push(
                        "map-iter",
                        t.line,
                        format!(
                            "`for … in &{recv}` iterates a HashMap/HashSet — order is \
                             unspecified; sort first, use a BTree collection, or waive \
                             with a reason"
                        ),
                    );
                }
            }
            if let Some((what, rule)) = path_call_at(toks, i) {
                push(rule, t.line, format!("`{what}` in a pipeline crate breaks run-to-run determinism"));
            }
        }

        // --- panic-freedom family ---
        if panic_on {
            if t.is_punct('.')
                && matches!(toks.get(i + 1), Some(m) if m.is_ident("unwrap") || m.is_ident("expect"))
                && matches!(toks.get(i + 2), Some(p) if p.is_punct('('))
            {
                let m = &toks[i + 1].text;
                push(
                    "panic-path",
                    toks[i + 1].line,
                    format!("`.{m}(…)` on a panic-free path — route the failure through DtError"),
                );
            }
            if t.kind == TokKind::Ident
                && matches!(t.text.as_str(), "panic" | "unreachable" | "todo" | "unimplemented")
                && matches!(toks.get(i + 1), Some(p) if p.is_punct('!'))
            {
                push(
                    "panic-path",
                    t.line,
                    format!("`{}!` on a panic-free path — route the failure through DtError", t.text),
                );
            }
            // Indexing by integer literal: `xs[0]` (but not `[0u8; n]`).
            if t.is_punct('[')
                && i > 0
                && (toks[i - 1].kind == TokKind::Ident
                    || toks[i - 1].is_punct(')')
                    || toks[i - 1].is_punct(']'))
                && matches!(toks.get(i + 1), Some(x) if x.kind == TokKind::Int)
                && matches!(toks.get(i + 2), Some(p) if p.is_punct(']'))
            {
                push(
                    "panic-path",
                    t.line,
                    format!(
                        "indexing by literal `[{}]` on a panic-free path — use `.get(…)`",
                        toks[i + 1].text
                    ),
                );
            }
        }
    }

    apply_waivers(&mut findings, &lexed, toks, rel, cfg);
    findings.sort_by(|a, b| a.line.cmp(&b.line).then_with(|| a.rule.cmp(b.rule)));
    findings
}

/// Whole files under test/bench/example directories are test context.
fn file_is_test_context(rel: &str) -> bool {
    rel.split('/').any(|seg| seg == "tests" || seg == "benches" || seg == "examples")
}

/// Mark tokens inside `#[cfg(test)]` / `#[test]` / `#[bench]` items and
/// `mod tests { … }` blocks.
fn test_region_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct('#') && matches!(toks.get(i + 1), Some(t) if t.is_punct('[')) {
            let (end, is_test) = scan_attr(toks, i);
            if is_test {
                // Skip any further attributes, then swallow the item.
                let mut j = end;
                while j < toks.len()
                    && toks[j].is_punct('#')
                    && matches!(toks.get(j + 1), Some(t) if t.is_punct('['))
                {
                    j = scan_attr(toks, j).0;
                }
                let item_end = item_extent(toks, j);
                for m in mask.iter_mut().take(item_end).skip(i) {
                    *m = true;
                }
                i = item_end;
                continue;
            }
            i = end;
            continue;
        }
        if toks[i].is_ident("mod")
            && matches!(toks.get(i + 1), Some(t) if t.is_ident("tests") || t.is_ident("test"))
        {
            let item_end = item_extent(toks, i);
            for m in mask.iter_mut().take(item_end).skip(i) {
                *m = true;
            }
            i = item_end;
            continue;
        }
        i += 1;
    }
    mask
}

/// Scan an attribute starting at `#`; returns (index past `]`, is-test).
/// Test-ish: the attribute mentions `test` or `bench` without a `not(…)`
/// (so `#[cfg(not(test))]` stays non-test code).
fn scan_attr(toks: &[Tok], start: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut i = start + 1;
    let mut mentions_test = false;
    let mut negated = false;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return (i + 1, mentions_test && !negated);
            }
        } else if t.is_ident("test") || t.is_ident("bench") {
            mentions_test = true;
        } else if t.is_ident("not") {
            negated = true;
        }
        i += 1;
    }
    (toks.len(), false)
}

/// Extent of the item starting at `start`: through the matching `}` of
/// its first brace block, or through the first `;` outside all nesting.
fn item_extent(toks: &[Tok], start: usize) -> usize {
    let mut depth = 0isize;
    let mut braces = 0isize;
    let mut i = start;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Punct {
            match t.text.as_bytes()[0] {
                b'{' => {
                    depth += 1;
                    braces += 1;
                }
                b'(' | b'[' => depth += 1,
                b')' | b']' => depth -= 1,
                b'}' => {
                    depth -= 1;
                    braces -= 1;
                    if braces == 0 && depth <= 0 {
                        return i + 1;
                    }
                }
                b';' if depth == 0 => return i + 1,
                _ => {}
            }
        }
        i += 1;
    }
    toks.len()
}

/// Pass one of `map-iter`: names declared with a HashMap/HashSet type or
/// `let`-initialised from an expression mentioning one.
fn collect_hash_idents(toks: &[Tok]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for i in 0..toks.len() {
        // `name : … HashMap/HashSet …` — let annotations, struct fields,
        // fn params, struct-literal fields. Exclude `::` paths.
        if toks[i].kind == TokKind::Ident
            && matches!(toks.get(i + 1), Some(c) if c.is_punct(':'))
            && !matches!(toks.get(i + 2), Some(c) if c.is_punct(':'))
            && !(i > 0 && toks[i - 1].is_punct(':'))
            && type_scan_mentions_hash(toks, i + 2)
        {
            out.insert(toks[i].text.clone());
        }
        // `let [mut] name = … HashMap/HashSet …`.
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            if matches!(toks.get(j), Some(t) if t.is_ident("mut")) {
                j += 1;
            }
            if matches!(toks.get(j), Some(t) if t.kind == TokKind::Ident)
                && matches!(toks.get(j + 1), Some(t) if t.is_punct('='))
                && !matches!(toks.get(j + 2), Some(t) if t.is_punct('='))
                && rhs_scan_mentions_hash(toks, j + 2)
            {
                out.insert(toks[j].text.clone());
            }
        }
    }
    out
}

/// Scan a type position until its terminator; true when it mentions
/// HashMap/HashSet. Bounded so a pathological file cannot hang the scan.
fn type_scan_mentions_hash(toks: &[Tok], from: usize) -> bool {
    let mut angle = 0isize;
    let mut nest = 0isize;
    for t in toks.iter().skip(from).take(64) {
        if t.kind == TokKind::Punct {
            match t.text.as_bytes()[0] {
                b'<' => angle += 1,
                b'>' => angle -= 1,
                b'(' | b'[' => nest += 1,
                b')' | b']' if nest > 0 => nest -= 1,
                b';' | b'=' | b'{' => return false,
                b',' | b')' | b']' | b'}' if angle <= 0 && nest <= 0 => return false,
                _ => {}
            }
        } else if t.is_ident("HashMap") || t.is_ident("HashSet") {
            return true;
        }
    }
    false
}

/// Scan a `let` initialiser to its `;`; true when it mentions
/// HashMap/HashSet (covers `HashMap::new()`, `collect::<HashSet<_>>()`).
fn rhs_scan_mentions_hash(toks: &[Tok], from: usize) -> bool {
    let mut nest = 0isize;
    for t in toks.iter().skip(from).take(256) {
        if t.kind == TokKind::Punct {
            match t.text.as_bytes()[0] {
                b'(' | b'[' | b'{' => nest += 1,
                b')' | b']' | b'}' => nest -= 1,
                b';' if nest <= 0 => return false,
                _ => {}
            }
        } else if t.is_ident("HashMap") || t.is_ident("HashSet") {
            return true;
        }
    }
    false
}

const ORDER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// `recv.method(` where `recv` is a known hash ident and `method` is
/// order-dependent. `i` points at the receiver identifier.
fn order_method_at<'a>(
    toks: &'a [Tok],
    i: usize,
    hash_idents: &BTreeSet<String>,
) -> Option<(&'a str, &'a str)> {
    let recv = &toks[i];
    if recv.kind != TokKind::Ident || !hash_idents.contains(&recv.text) {
        return None;
    }
    let dot = toks.get(i + 1)?;
    let method = toks.get(i + 2)?;
    let paren = toks.get(i + 3)?;
    if dot.is_punct('.')
        && method.kind == TokKind::Ident
        && ORDER_METHODS.contains(&method.text.as_str())
        && paren.is_punct('(')
    {
        return Some((&recv.text, &method.text));
    }
    None
}

/// `for pat in [&][mut] path { …` where the path's final segment is a
/// hash ident and the loop body starts immediately (method chains are
/// handled by `order_method_at`). `i` points at `for`.
fn for_in_hash_receiver<'a>(
    toks: &'a [Tok],
    i: usize,
    hash_idents: &BTreeSet<String>,
) -> Option<&'a str> {
    // Find `in` at nesting depth 0 within a short window.
    let mut depth = 0isize;
    let mut j = i + 1;
    let limit = (i + 40).min(toks.len());
    while j < limit {
        let t = &toks[j];
        if t.kind == TokKind::Punct {
            match t.text.as_bytes()[0] {
                b'(' | b'[' | b'{' => depth += 1,
                b')' | b']' | b'}' => depth -= 1,
                _ => {}
            }
        } else if t.is_ident("in") && depth == 0 {
            break;
        }
        j += 1;
    }
    if j >= limit {
        return None;
    }
    j += 1;
    while matches!(toks.get(j), Some(t) if t.is_punct('&') || t.is_ident("mut")) {
        j += 1;
    }
    // Walk a `seg ( . seg | :: seg )*` path.
    let mut last: Option<usize> = None;
    while matches!(toks.get(j), Some(t) if t.kind == TokKind::Ident) {
        last = Some(j);
        j += 1;
        if matches!(toks.get(j), Some(t) if t.is_punct('.'))
            && matches!(toks.get(j + 1), Some(t) if t.kind == TokKind::Ident)
        {
            j += 1;
        } else if matches!(toks.get(j), Some(t) if t.is_punct(':'))
            && matches!(toks.get(j + 1), Some(t) if t.is_punct(':'))
            && matches!(toks.get(j + 2), Some(t) if t.kind == TokKind::Ident)
        {
            j += 2;
        } else {
            break;
        }
    }
    let last = last?;
    if matches!(toks.get(j), Some(t) if t.is_punct('{'))
        && hash_idents.contains(&toks[last].text)
    {
        return Some(&toks[last].text);
    }
    None
}

/// Nondeterministic calls recognised by path suffix: returns the display
/// form and the rule it violates. `i` points at the first path segment.
fn path_call_at(toks: &[Tok], i: usize) -> Option<(String, &'static str)> {
    let seg = &toks[i];
    if seg.kind != TokKind::Ident {
        return None;
    }
    let c1 = toks.get(i + 1)?;
    let c2 = toks.get(i + 2)?;
    let name = toks.get(i + 3)?;
    if !(c1.is_punct(':') && c2.is_punct(':') && name.kind == TokKind::Ident) {
        return None;
    }
    match (seg.text.as_str(), name.text.as_str()) {
        ("Instant" | "SystemTime", "now") => Some((format!("{}::now", seg.text), "wall-clock")),
        ("thread", "spawn") => Some(("thread::spawn".to_owned(), "thread-spawn")),
        ("env", "var" | "vars" | "var_os" | "vars_os" | "temp_dir") => {
            Some((format!("env::{}", name.text), "env-read"))
        }
        _ => None,
    }
}

/// Match findings against inline waivers (trailing: same line; standalone:
/// next code line) and dtlint.toml baseline entries.
fn apply_waivers(findings: &mut [Finding], lexed: &Lexed, toks: &[Tok], rel: &str, cfg: &Config) {
    for f in findings.iter_mut() {
        if f.rule == "bad-waiver" {
            continue;
        }
        let inline = lexed.waivers.iter().find(|w| {
            w.well_formed && w.has_reason && w.rule == f.rule && {
                if w.trailing {
                    w.line == f.line
                } else {
                    // Standalone comment covers the next line holding code.
                    next_code_line(toks, w.line) == Some(f.line)
                }
            }
        });
        if inline.is_some() {
            f.waived = Some("inline waiver".to_owned());
            continue;
        }
        if let Some(b) = cfg
            .baseline
            .iter()
            .find(|b| b.rule == f.rule && path_under(rel, &b.path))
        {
            f.waived = Some(format!("dtlint.toml: {}", b.reason));
        }
    }
}

fn next_code_line(toks: &[Tok], after: u32) -> Option<u32> {
    toks.iter().map(|t| t.line).find(|&l| l > after)
}
