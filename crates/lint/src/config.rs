//! `dtlint.toml` — which path prefixes each rule family governs, plus a
//! checked-in baseline of path-scoped waivers.
//!
//! The parser is a deliberately small TOML subset (the build environment
//! has no registry access, so no `toml` crate): `[section]` /
//! `[[section]]` headers, `key = "string"`, `key = ["a", "b"]` (arrays
//! may span lines), and `#` comments. That covers the whole config
//! surface; anything fancier is a config error, not a silent skip.

use std::collections::BTreeMap;

/// A baseline waiver from `dtlint.toml`: every finding for `rule` in
/// files under `path` is waived, with a mandatory reason.
#[derive(Debug, Clone)]
pub struct BaselineWaiver {
    pub path: String,
    pub rule: String,
    pub reason: String,
}

/// Effective configuration (defaults mirror the checked-in dtlint.toml).
#[derive(Debug, Clone)]
pub struct Config {
    /// Path prefixes whose code affects fused output: the determinism
    /// family (map-iter, wall-clock, thread-spawn, env-read) fires here.
    pub determinism_paths: Vec<String>,
    /// Path prefixes exempt from the determinism family even when nested
    /// under a governed prefix (benches and shims legitimately read
    /// clocks and spawn threads).
    pub determinism_exempt: Vec<String>,
    /// Path prefixes held to panic-freedom (panic-path).
    pub panic_paths: Vec<String>,
    /// Path prefixes where `unsafe` is permitted.
    pub unsafe_allow: Vec<String>,
    /// Path-scoped waivers.
    pub baseline: Vec<BaselineWaiver>,
}

impl Default for Config {
    fn default() -> Self {
        let s = |v: &[&str]| v.iter().map(|p| (*p).to_owned()).collect();
        Config {
            determinism_paths: s(&[
                "src",
                "crates/core",
                "crates/entity",
                "crates/storage",
                "crates/schema",
                "crates/clean",
                "crates/text",
                "crates/sim",
                "crates/lint",
            ]),
            determinism_exempt: s(&["crates/bench", "shims"]),
            panic_paths: s(&["crates/storage"]),
            unsafe_allow: vec![],
            baseline: vec![],
        }
    }
}

/// Does `rel` (a `/`-separated workspace-relative path) live under the
/// prefix `pre`? Prefixes match whole path components only.
pub fn path_under(rel: &str, pre: &str) -> bool {
    rel == pre || (rel.starts_with(pre) && rel.as_bytes().get(pre.len()) == Some(&b'/'))
}

impl Config {
    pub fn in_any(paths: &[String], rel: &str) -> bool {
        paths.iter().any(|p| path_under(rel, p))
    }

    /// Parse `dtlint.toml` content. Unknown sections/keys error so a typo
    /// cannot silently disable a rule family.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config {
            determinism_paths: vec![],
            determinism_exempt: vec![],
            panic_paths: vec![],
            unsafe_allow: vec![],
            baseline: vec![],
        };
        let mut section = String::new();
        let mut pending: BTreeMap<String, Vec<String>> = BTreeMap::new();
        let mut lines = text.lines().enumerate().peekable();
        let flush_allow = |section: &str,
                           pending: &mut BTreeMap<String, Vec<String>>,
                           out: &mut Vec<BaselineWaiver>|
         -> Result<(), String> {
            if section != "allow" {
                return Ok(());
            }
            let take = |p: &mut BTreeMap<String, Vec<String>>, k: &str| -> Result<String, String> {
                p.remove(k)
                    .and_then(|mut v| v.pop())
                    .ok_or_else(|| format!("[[allow]] entry missing `{k}`"))
            };
            let w = BaselineWaiver {
                path: take(pending, "path")?,
                rule: take(pending, "rule")?,
                reason: take(pending, "reason")?,
            };
            if w.reason.trim().is_empty() {
                return Err(format!("[[allow]] for {} has an empty reason", w.path));
            }
            out.push(w);
            pending.clear();
            Ok(())
        };

        while let Some((ln, raw)) = lines.next() {
            let line = strip_comment(raw).trim().to_owned();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
                flush_allow(&section, &mut pending, &mut cfg.baseline)?;
                if name.trim() != "allow" {
                    return Err(format!("line {}: unknown array section [[{name}]]", ln + 1));
                }
                section = "allow".to_owned();
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                flush_allow(&section, &mut pending, &mut cfg.baseline)?;
                section = name.trim().to_owned();
                if !matches!(section.as_str(), "determinism" | "panic_freedom" | "unsafe_audit") {
                    return Err(format!("line {}: unknown section [{section}]", ln + 1));
                }
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {}: expected `key = value`", ln + 1));
            };
            let key = key.trim().to_owned();
            let mut value = value.trim().to_owned();
            // Arrays may continue over following lines until brackets close.
            while value.starts_with('[') && !balanced(&value) {
                let Some((_, cont)) = lines.next() else {
                    return Err(format!("line {}: unterminated array", ln + 1));
                };
                value.push(' ');
                value.push_str(strip_comment(cont).trim());
            }
            let values = parse_value(&value).map_err(|e| format!("line {}: {e}", ln + 1))?;
            match (section.as_str(), key.as_str()) {
                ("determinism", "paths") => cfg.determinism_paths = values,
                ("determinism", "exempt") => cfg.determinism_exempt = values,
                ("panic_freedom", "paths") => cfg.panic_paths = values,
                ("unsafe_audit", "allow") => cfg.unsafe_allow = values,
                ("allow", k @ ("path" | "rule" | "reason")) => {
                    pending.insert(k.to_owned(), values);
                }
                (s, k) => return Err(format!("line {}: unknown key `{k}` in [{s}]", ln + 1)),
            }
        }
        flush_allow(&section, &mut pending, &mut cfg.baseline)?;
        Ok(cfg)
    }
}

fn strip_comment(line: &str) -> &str {
    // `#` starts a comment unless inside a quoted string.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn balanced(v: &str) -> bool {
    v.matches('[').count() == v.matches(']').count()
}

/// Parse `"str"` or `["a", "b"]` into a list of strings.
fn parse_value(v: &str) -> Result<Vec<String>, String> {
    let v = v.trim();
    if let Some(inner) = v.strip_prefix('[').and_then(|v| v.strip_suffix(']')) {
        let mut out = Vec::new();
        for item in inner.split(',') {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            out.push(unquote(item)?);
        }
        return Ok(out);
    }
    Ok(vec![unquote(v)?])
}

fn unquote(v: &str) -> Result<String, String> {
    v.strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .map(str::to_owned)
        .ok_or_else(|| format!("expected quoted string, got `{v}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_config() {
        let cfg = Config::parse(
            r#"
# comment
[determinism]
paths = ["src", "crates/core"]   # trailing comment
exempt = [
    "crates/bench",
    "shims",
]

[panic_freedom]
paths = ["crates/storage"]

[unsafe_audit]
allow = ["crates/ffi"]

[[allow]]
path = "crates/core/src/query.rs"
rule = "map-iter"
reason = "sorted before output"
"#,
        )
        .expect("parses");
        assert_eq!(cfg.determinism_paths, vec!["src", "crates/core"]);
        assert_eq!(cfg.determinism_exempt, vec!["crates/bench", "shims"]);
        assert_eq!(cfg.unsafe_allow, vec!["crates/ffi"]);
        assert_eq!(cfg.baseline.len(), 1);
        assert_eq!(cfg.baseline[0].rule, "map-iter");
    }

    #[test]
    fn rejects_unknown_keys_and_missing_reasons() {
        assert!(Config::parse("[determinism]\nbogus = [\"x\"]").is_err());
        assert!(Config::parse("[mystery]\n").is_err());
        assert!(Config::parse("[[allow]]\npath = \"x\"\nrule = \"map-iter\"").is_err());
        assert!(
            Config::parse("[[allow]]\npath = \"x\"\nrule = \"r\"\nreason = \"  \"").is_err(),
            "blank reason must be rejected"
        );
    }

    #[test]
    fn path_prefix_matches_whole_components() {
        assert!(path_under("crates/core/src/lib.rs", "crates/core"));
        assert!(!path_under("crates/corebis/src/lib.rs", "crates/core"));
        assert!(path_under("src/lib.rs", "src"));
    }
}
