//! A small Rust lexer, exact where it matters for linting.
//!
//! The rule engine never needs a full parse — it pattern-matches token
//! sequences — but it absolutely needs the token stream to be *clean*:
//! nothing inside a string literal, raw string, char literal, or comment
//! may ever surface as a token, or every rule would fire on its own
//! documentation. This lexer therefore handles the full literal grammar
//! (escapes, `r#"…"#` raw strings with arbitrary hash runs, byte/C-string
//! prefixes, char-vs-lifetime disambiguation, nested block comments) and
//! tracks line numbers through all of it.
//!
//! Comments are not discarded entirely: `// dtlint::allow(rule, reason =
//! "…")` waiver directives are parsed out of line comments and returned
//! alongside the tokens (see [`Waiver`]).

/// Token classification — just enough structure for sequence matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `for`, `unsafe`, `r#type`, …).
    Ident,
    /// Integer literal (`0`, `0x1F`, `42usize`).
    Int,
    /// Float literal (`1.5`, `1e-9`).
    Float,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`, `c"…"`).
    Str,
    /// Char or byte-char literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`, `'_`).
    Lifetime,
    /// Single punctuation character (`.`, `:`, `{`, `!`, …).
    Punct,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    /// Identifier/number text; single char for `Punct`; empty for
    /// string/char literals (their content must never influence a rule).
    pub text: String,
    pub line: u32,
}

impl Tok {
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.as_bytes().first() == Some(&(c as u8))
    }

    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
}

/// A `// dtlint::allow(rule, reason = "…")` directive found in a comment.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Line the comment sits on.
    pub line: u32,
    /// Rule name as written (validated by the rule engine).
    pub rule: String,
    /// Whether a non-empty `reason = "…"` was supplied.
    pub has_reason: bool,
    /// Whether the directive was syntactically well-formed.
    pub well_formed: bool,
    /// True when code tokens precede the comment on the same line — a
    /// trailing waiver covers its own line; a standalone one covers the
    /// next code line.
    pub trailing: bool,
}

/// Lexer output: the token stream plus any waiver directives.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub waivers: Vec<Waiver>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lex `src` into tokens and waiver directives. Never fails: unterminated
/// literals simply run to end of input (the rustc build catches those).
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let n = b.len();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut line_has_code = false;
    let mut out = Lexed::default();

    macro_rules! push {
        ($kind:expr, $text:expr) => {{
            out.toks.push(Tok { kind: $kind, text: $text, line });
            line_has_code = true;
        }};
    }

    while i < n {
        let c = b[i];
        // Whitespace and newlines.
        if c == b'\n' {
            line += 1;
            line_has_code = false;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == b'/' && i + 1 < n && b[i + 1] == b'/' {
            let start = i + 2;
            let mut j = start;
            while j < n && b[j] != b'\n' {
                j += 1;
            }
            if let Some(w) = parse_waiver(&src[start..j], line, line_has_code) {
                out.waivers.push(w);
            }
            i = j;
            continue;
        }
        if c == b'/' && i + 1 < n && b[i + 1] == b'*' {
            let mut depth = 1usize;
            i += 2;
            while i < n && depth > 0 {
                if b[i] == b'\n' {
                    line += 1;
                    i += 1;
                } else if b[i] == b'/' && i + 1 < n && b[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && i + 1 < n && b[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            continue;
        }
        // String-ish literals, including prefixed forms. The prefix chars
        // are also valid identifier starts, so check these first.
        if c == b'"' {
            i = skip_quoted(b, i, &mut line);
            push!(TokKind::Str, String::new());
            continue;
        }
        if (c == b'r' || c == b'b' || c == b'c') && i + 1 < n {
            if let Some(next) = string_prefix_end(b, i) {
                let (end, kind) = next;
                i = end;
                push!(kind, String::new());
                continue;
            }
            if c == b'r' && b[i + 1] == b'#' && i + 2 < n && is_ident_start(b[i + 2]) {
                // Raw identifier `r#type`.
                let mut j = i + 2;
                while j < n && is_ident_continue(b[j]) {
                    j += 1;
                }
                push!(TokKind::Ident, src[i + 2..j].to_owned());
                i = j;
                continue;
            }
        }
        // Char literal vs lifetime.
        if c == b'\'' {
            if i + 1 < n && b[i + 1] == b'\\' {
                // Escaped char literal: scan to the closing quote.
                let mut j = i + 2;
                if j < n {
                    j += 1; // the escaped character itself
                }
                while j < n && b[j] != b'\'' {
                    j += 1;
                }
                i = (j + 1).min(n);
                push!(TokKind::Char, String::new());
                continue;
            }
            if i + 1 < n && is_ident_start(b[i + 1]) {
                let mut j = i + 1;
                while j < n && is_ident_continue(b[j]) {
                    j += 1;
                }
                if j < n && b[j] == b'\'' && j == i + 2 {
                    // Exactly one identifier-ish char then a quote: 'a'.
                    i = j + 1;
                    push!(TokKind::Char, String::new());
                } else {
                    // 'static, 'a followed by non-quote → lifetime.
                    push!(TokKind::Lifetime, src[i + 1..j].to_owned());
                    i = j;
                }
                continue;
            }
            // Punctuation char literal: '+', ' ', '"'.
            let mut j = i + 1;
            while j < n && b[j] != b'\'' {
                if b[j] == b'\n' {
                    line += 1;
                }
                j += 1;
            }
            i = (j + 1).min(n);
            push!(TokKind::Char, String::new());
            continue;
        }
        // Identifiers and keywords.
        if is_ident_start(c) {
            let mut j = i + 1;
            while j < n && is_ident_continue(b[j]) {
                j += 1;
            }
            push!(TokKind::Ident, src[i..j].to_owned());
            i = j;
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let mut j = i + 1;
            let mut kind = TokKind::Int;
            if c == b'0' && j < n && (b[j] == b'x' || b[j] == b'o' || b[j] == b'b') {
                j += 1;
                while j < n && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
            } else {
                while j < n && (b[j].is_ascii_digit() || b[j] == b'_') {
                    j += 1;
                }
                // Fractional part only when a digit follows the dot
                // (so `0..n` stays an Int plus a range).
                if j + 1 < n && b[j] == b'.' && b[j + 1].is_ascii_digit() {
                    kind = TokKind::Float;
                    j += 1;
                    while j < n && (b[j].is_ascii_digit() || b[j] == b'_') {
                        j += 1;
                    }
                }
                // Exponent.
                if j < n
                    && (b[j] == b'e' || b[j] == b'E')
                    && (j + 1 < n
                        && (b[j + 1].is_ascii_digit()
                            || ((b[j + 1] == b'+' || b[j + 1] == b'-')
                                && j + 2 < n
                                && b[j + 2].is_ascii_digit())))
                {
                    kind = TokKind::Float;
                    j += 1;
                    if b[j] == b'+' || b[j] == b'-' {
                        j += 1;
                    }
                    while j < n && (b[j].is_ascii_digit() || b[j] == b'_') {
                        j += 1;
                    }
                }
                // Type suffix (`usize`, `f64`, …).
                while j < n && is_ident_continue(b[j]) {
                    j += 1;
                }
            }
            push!(kind, src[i..j].to_owned());
            i = j;
            continue;
        }
        // Everything else: single punctuation char.
        push!(TokKind::Punct, (c as char).to_string());
        i += 1;
    }
    out
}

/// Recognise a string literal starting at `i` with an `r`/`b`/`c` prefix
/// (`r"`, `r#"`, `b"`, `b'`, `br#"`, `cr"`, `c"` …). Returns the index
/// past the literal and its token kind, or None when `i` starts an
/// ordinary identifier.
fn string_prefix_end(b: &[u8], i: usize) -> Option<(usize, TokKind)> {
    let n = b.len();
    let mut j = i;
    let mut raw = false;
    // Consume up to two prefix letters (`br`, `cr`).
    if b[j] == b'b' || b[j] == b'c' {
        j += 1;
        if j < n && b[j] == b'r' {
            raw = true;
            j += 1;
        }
    } else if b[j] == b'r' {
        raw = true;
        j += 1;
    }
    if j >= n {
        return None;
    }
    if raw {
        // Count hashes; must then hit a quote to be a raw string.
        let mut hashes = 0usize;
        while j < n && b[j] == b'#' {
            hashes += 1;
            j += 1;
        }
        if j < n && b[j] == b'"' {
            j += 1;
            // Scan for `"` followed by `hashes` hashes.
            loop {
                if j >= n {
                    return Some((n, TokKind::Str));
                }
                if b[j] == b'"' && b[j + 1..].len() >= hashes
                    && b[j + 1..j + 1 + hashes].iter().all(|&h| h == b'#')
                {
                    return Some((j + 1 + hashes, TokKind::Str));
                }
                j += 1;
            }
        }
        return None;
    }
    // Non-raw prefixed literal: `b"…"`, `c"…"`, `b'…'`.
    if b[j] == b'"' {
        return Some((skip_quoted_raw(b, j, b'"'), TokKind::Str));
    }
    if b[i] == b'b' && b[j] == b'\'' {
        return Some((skip_quoted_raw(b, j, b'\''), TokKind::Char));
    }
    None
}

/// Skip a quoted literal starting at the opening quote, honouring
/// backslash escapes, and counting newlines into `line`.
fn skip_quoted(b: &[u8], start: usize, line: &mut u32) -> usize {
    let n = b.len();
    let quote = b[start];
    let mut i = start + 1;
    while i < n {
        match b[i] {
            b'\\' => {
                if i + 1 < n && b[i + 1] == b'\n' {
                    *line += 1;
                }
                i = (i + 2).min(n);
            }
            b'\n' => {
                *line += 1;
                i += 1;
            }
            q if q == quote => return i + 1,
            _ => i += 1,
        }
    }
    n
}

/// Escape-aware quote skip that ignores newline counting (prefixed
/// literals are single-line in practice; miscounts would only skew a
/// span, never a match).
fn skip_quoted_raw(b: &[u8], start: usize, quote: u8) -> usize {
    let n = b.len();
    let mut i = start + 1;
    while i < n {
        match b[i] {
            b'\\' => i = (i + 2).min(n),
            q if q == quote => return i + 1,
            _ => i += 1,
        }
    }
    n
}

/// Parse a waiver directive out of one line comment's content. The
/// directive must be the first thing in the comment (after doc-comment
/// markers) so prose *mentioning* the syntax never parses as a waiver.
fn parse_waiver(comment: &str, line: u32, trailing: bool) -> Option<Waiver> {
    const NEEDLE: &str = "dtlint::allow(";
    let anchored = comment.trim_start_matches(['/', '!', ' ', '\t']);
    if !anchored.starts_with(NEEDLE) {
        return None;
    }
    let rest = &anchored[NEEDLE.len()..];
    // The closing paren must be found outside the quoted reason — the
    // reason text itself may contain parentheses.
    let mut in_str = false;
    let close = rest.char_indices().find_map(|(idx, ch)| match ch {
        '"' => {
            in_str = !in_str;
            None
        }
        ')' if !in_str => Some(idx),
        _ => None,
    });
    let close = match close {
        Some(c) => c,
        None => {
            return Some(Waiver {
                line,
                rule: String::new(),
                has_reason: false,
                well_formed: false,
                trailing,
            })
        }
    };
    let inner = &rest[..close];
    let mut parts = inner.splitn(2, ',');
    let rule = parts.next().unwrap_or("").trim().to_owned();
    let reason_part = parts.next().unwrap_or("").trim();
    let has_reason = reason_part
        .strip_prefix("reason")
        .map(|r| r.trim_start())
        .and_then(|r| r.strip_prefix('='))
        .map(|r| r.trim())
        .is_some_and(|r| {
            r.len() > 2 && r.starts_with('"') && r.ends_with('"') && r.len() > "\"\"".len()
        });
    let well_formed = !rule.is_empty() && !rule.contains(char::is_whitespace);
    Some(Waiver { line, rule, has_reason, well_formed, trailing })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_emit_no_idents() {
        let src = r###"
            // HashMap in a comment
            /* HashMap in /* a nested */ block */
            let s = "HashMap::iter()";
            let r = r#"for x in &map { HashMap }"#;
            let b = b"HashSet";
            let c = 'H';
        "###;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "HashMap" || i == "HashSet" || i == "map"));
        assert!(ids.contains(&"let".to_owned()));
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let s = '\\n'; }").toks;
        let lifetimes: Vec<_> =
            toks.iter().filter(|t| t.kind == TokKind::Lifetime).map(|t| t.text.clone()).collect();
        assert_eq!(lifetimes, vec!["a", "a"]);
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 2);
        // 'static as a lifetime, not an unterminated char.
        let toks = lex("&'static str").toks;
        assert!(toks.iter().any(|t| t.kind == TokKind::Lifetime && t.text == "static"));
    }

    #[test]
    fn raw_strings_with_hashes_and_raw_idents() {
        let toks = lex(r####"let x = r##"quote " and "# inside"##; let r#type = 1;"####).toks;
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
        assert!(toks.iter().any(|t| t.is_ident("type")));
    }

    #[test]
    fn line_numbers_cross_literals() {
        let src = "let a = \"two\nlines\";\nlet b = 1;";
        let toks = lex(src).toks;
        let b_tok = toks.iter().find(|t| t.is_ident("b")).expect("b");
        assert_eq!(b_tok.line, 3);
    }

    #[test]
    fn numbers_ranges_and_suffixes() {
        let toks = lex("for i in 0..10 { x[3]; y[0usize]; 1.5; 1e-9; }").toks;
        let ints: Vec<_> =
            toks.iter().filter(|t| t.kind == TokKind::Int).map(|t| t.text.clone()).collect();
        assert_eq!(ints, vec!["0", "10", "3", "0usize"]);
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Float).count(), 2);
    }

    #[test]
    fn waiver_parsing() {
        let l = lex("let x = 1; // dtlint::allow(map-iter, reason = \"sorted below\")\nlet y = 2;");
        assert_eq!(l.waivers.len(), 1);
        let w = &l.waivers[0];
        assert_eq!(w.rule, "map-iter");
        assert!(w.has_reason && w.well_formed && w.trailing);

        let l = lex("// dtlint::allow(panic-path)\nfoo();");
        let w = &l.waivers[0];
        assert!(!w.has_reason && w.well_formed && !w.trailing);

        let l = lex("// dtlint::allow(map-iter, reason = \"\")\nfoo();");
        assert!(!l.waivers[0].has_reason, "empty reason must not count");

        // Parentheses inside the quoted reason must not end the directive.
        let l = lex("// dtlint::allow(map-iter, reason = \"sorted by (count, idx) below\")\nfoo();");
        let w = &l.waivers[0];
        assert!(w.has_reason && w.well_formed, "parens in reason: {w:?}");
        assert_eq!(w.rule, "map-iter");
    }
}
