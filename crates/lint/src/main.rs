//! `dtlint` CLI — lint the workspace (or an explicit file list) against
//! the repo's determinism / panic-freedom / unsafe-audit invariants.
//!
//! ```text
//! dtlint [--root DIR] [--config FILE] [--format human|json] [--deny]
//!        [--list-rules] [FILES…]
//! ```
//!
//! Exit codes: 0 clean (or findings without `--deny`), 1 findings under
//! `--deny`, 2 usage or IO error.

use std::path::PathBuf;
use std::process::ExitCode;

use datatamer_lint::{lint_source, load_config, rules, run_workspace, Config, Report};

struct Args {
    root: PathBuf,
    config: Option<PathBuf>,
    json: bool,
    deny: bool,
    list_rules: bool,
    files: Vec<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        config: None,
        json: false,
        deny: false,
        list_rules: false,
        files: vec![],
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => args.root = it.next().ok_or("--root needs a value")?.into(),
            "--config" => args.config = Some(it.next().ok_or("--config needs a value")?.into()),
            "--format" => {
                args.json = match it.next().as_deref() {
                    Some("json") => true,
                    Some("human") => false,
                    other => return Err(format!("--format must be human|json, got {other:?}")),
                }
            }
            "--deny" => args.deny = true,
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => {
                return Err("usage: dtlint [--root DIR] [--config FILE] \
                            [--format human|json] [--deny] [--list-rules] [FILES…]"
                    .to_owned())
            }
            f if !f.starts_with('-') => args.files.push(f.into()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        for (rule, desc) in rules::RULES {
            println!("{rule:14} {desc}");
        }
        return ExitCode::SUCCESS;
    }
    let cfg: Config = match &args.config {
        Some(path) => match std::fs::read_to_string(path)
            .map_err(|e| format!("{}: {e}", path.display()))
            .and_then(|t| Config::parse(&t).map_err(|e| format!("{}: {e}", path.display())))
        {
            Ok(c) => c,
            Err(e) => {
                eprintln!("dtlint: {e}");
                return ExitCode::from(2);
            }
        },
        None => match load_config(&args.root) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("dtlint: {e}");
                return ExitCode::from(2);
            }
        },
    };

    let report = if args.files.is_empty() {
        match run_workspace(&args.root, &cfg) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("dtlint: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        let mut report = Report::default();
        for f in &args.files {
            let rel = f
                .strip_prefix(&args.root)
                .unwrap_or(f)
                .to_string_lossy()
                .replace('\\', "/");
            match std::fs::read_to_string(f) {
                Ok(src) => report.push_file(lint_source(&rel, &src, &cfg)),
                Err(e) => {
                    eprintln!("dtlint: {}: {e}", f.display());
                    return ExitCode::from(2);
                }
            }
        }
        report.finalize();
        report
    };

    if args.json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_human());
    }
    if args.deny && report.active_count() > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
