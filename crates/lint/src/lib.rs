//! `dtlint` — the workspace's determinism & panic-freedom static gate.
//!
//! The system's core correctness contract is *byte-identical fused output*
//! across thread counts, storage backends, and incremental-vs-rebuild
//! runs. The runtime equivalence suites sample that contract; a single
//! `HashMap` iteration or wall-clock read on a hot path can break it in
//! ways a sampled test may never hit. `dtlint` turns the invariants into
//! a static gate: a hand-rolled, zero-dependency Rust lexer
//! ([`lexer`]) feeds a token-sequence rule engine ([`rules`]) configured
//! by `dtlint.toml` ([`config`]), reporting `file:line` spans in human or
//! JSON form ([`report`]) and exiting nonzero under `--deny`.
//!
//! See `crates/lint/README.md` for the rule catalogue and waiver syntax,
//! and the "Static analysis & invariants" section of the workspace
//! `src/lib.rs` for why determinism is load-bearing here.

pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;

use std::path::{Path, PathBuf};

pub use config::Config;
pub use report::Report;
pub use rules::{lint_source, Finding};

/// Directories never descended into during the workspace walk.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "node_modules"];

/// Collect every `.rs` file under `root`, workspace-relative, sorted —
/// the scan order (and therefore the report) is deterministic.
pub fn collect_rs_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    walk(root, root, &mut out)?;
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

/// Lint the whole workspace under `root` with `cfg`; returns the
/// finalized report.
pub fn run_workspace(root: &Path, cfg: &Config) -> std::io::Result<Report> {
    let mut report = Report::default();
    for rel in collect_rs_files(root)? {
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        let source = std::fs::read_to_string(root.join(&rel))?;
        report.push_file(lint_source(&rel_str, &source, cfg));
    }
    report.finalize();
    Ok(report)
}

/// Load `dtlint.toml` from `root`, falling back to built-in defaults
/// when absent.
pub fn load_config(root: &Path) -> Result<Config, String> {
    let path = root.join("dtlint.toml");
    match std::fs::read_to_string(&path) {
        Ok(text) => Config::parse(&text).map_err(|e| format!("{}: {e}", path.display())),
        Err(_) => Ok(Config::default()),
    }
}
