//! MinHash signatures and banded LSH for candidate generation.
//!
//! Entity consolidation at web scale cannot compare all pairs; Data Tamer
//! blocks candidates first. MinHash LSH gives near-neighbour candidates in
//! Jaccard space: records whose token sets are similar land in the same
//! band bucket with high probability.

use std::collections::HashMap;
use std::hash::Hash;

/// 64-bit FNV-1a, seeded by XOR-folding the seed into the offset basis.
/// Hand-rolled so the signature scheme has zero dependencies and is stable
/// across platforms and runs (core step shared with `crate::tokens`).
fn fnv1a_seeded(bytes: &[u8], seed: u64) -> u64 {
    let mut h = crate::tokens::fnv1a_step(
        crate::tokens::FNV_OFFSET_BASIS ^ seed.wrapping_mul(0x9e3779b97f4a7c15),
        bytes,
    );
    // Final avalanche (splitmix64 tail) to decorrelate the seeds.
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58476d1ce4e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d049bb133111eb);
    h ^ (h >> 31)
}

/// A MinHash signature: one minimum per hash function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature(pub Vec<u64>);

impl Signature {
    /// Estimated Jaccard similarity: fraction of agreeing components.
    pub fn estimate_jaccard(&self, other: &Signature) -> f64 {
        assert_eq!(
            self.0.len(),
            other.0.len(),
            "signatures must come from the same MinHasher"
        );
        if self.0.is_empty() {
            return 0.0;
        }
        let agree = self.0.iter().zip(&other.0).filter(|(a, b)| a == b).count();
        agree as f64 / self.0.len() as f64
    }

    /// True when this is the signature of an empty token set (every
    /// component still at `u64::MAX`, i.e. no token ever lowered a slot).
    pub fn is_empty_set(&self) -> bool {
        self.0.iter().all(|&v| v == u64::MAX)
    }
}

/// Computes MinHash signatures with `k` seeded hash functions.
#[derive(Debug, Clone)]
pub struct MinHasher {
    seeds: Vec<u64>,
}

impl MinHasher {
    /// Create a hasher with `k` hash functions derived from `seed`.
    pub fn new(k: usize, seed: u64) -> Self {
        let seeds = (0..k as u64)
            .map(|i| seed.wrapping_add(i.wrapping_mul(0x9e3779b97f4a7c15)).wrapping_add(1))
            .collect();
        MinHasher { seeds }
    }

    /// Number of hash functions (signature length).
    pub fn k(&self) -> usize {
        self.seeds.len()
    }

    /// Signature of a token set. An empty set yields an all-`u64::MAX`
    /// signature. Such a signature rarely collides with a *non-empty* one
    /// (a token would have to hash to `u64::MAX` under every function),
    /// but it collides with every *other* empty signature on every band —
    /// two empty sets look identical, not dissimilar. Empty signatures are
    /// therefore skipped by [`MinHashLsh::insert`]; test with
    /// [`Signature::is_empty_set`].
    pub fn signature<S: AsRef<str>>(&self, tokens: &[S]) -> Signature {
        let mut mins = vec![u64::MAX; self.seeds.len()];
        for t in tokens {
            let bytes = t.as_ref().as_bytes();
            for (slot, seed) in mins.iter_mut().zip(&self.seeds) {
                let h = fnv1a_seeded(bytes, *seed);
                if h < *slot {
                    *slot = h;
                }
            }
        }
        Signature(mins)
    }
}

/// Banded locality-sensitive hashing over MinHash signatures.
///
/// Items whose signatures agree on *all* rows of at least one band become
/// candidate pairs. With `b` bands of `r` rows the match probability is
/// `1 - (1 - s^r)^b` for Jaccard similarity `s`.
#[derive(Debug, Clone)]
pub struct MinHashLsh<K> {
    bands: usize,
    rows: usize,
    // For each band, bucket-hash -> member keys.
    tables: Vec<HashMap<u64, Vec<K>>>,
}

impl<K: Clone + Eq + Hash> MinHashLsh<K> {
    /// Create an LSH index; `bands * rows` must equal the signature length
    /// used with [`MinHashLsh::insert`].
    pub fn new(bands: usize, rows: usize) -> Self {
        assert!(bands > 0 && rows > 0, "bands and rows must be positive");
        MinHashLsh { bands, rows, tables: vec![HashMap::new(); bands] }
    }

    /// Insert an item's signature under `key`.
    ///
    /// Empty-set signatures (all `u64::MAX`) are skipped: they carry no
    /// similarity evidence, yet band-collide with every other empty
    /// signature, which would pair every empty-keyed item with every other.
    /// Returns whether the item was indexed.
    pub fn insert(&mut self, key: K, sig: &Signature) -> bool {
        assert_eq!(
            sig.0.len(),
            self.bands * self.rows,
            "signature length must equal bands*rows"
        );
        if sig.is_empty_set() {
            return false;
        }
        // dtlint::allow(map-iter, reason = "`tables` is a Vec of band tables; Vec iteration order is deterministic")
        for (band, table) in self.tables.iter_mut().enumerate() {
            let chunk = &sig.0[band * self.rows..(band + 1) * self.rows];
            let h = hash_chunk(chunk, band as u64);
            table.entry(h).or_default().push(key.clone());
        }
        true
    }

    /// Query candidate keys sharing at least one band bucket with `sig`.
    /// The result is deduplicated but unordered.
    pub fn candidates(&self, sig: &Signature) -> Vec<K> {
        let mut seen: HashMap<&K, ()> = HashMap::new();
        let mut out = Vec::new();
        // dtlint::allow(map-iter, reason = "`tables` is a Vec of band tables; member Vecs preserve insertion order")
        for (band, table) in self.tables.iter().enumerate() {
            let chunk = &sig.0[band * self.rows..(band + 1) * self.rows];
            let h = hash_chunk(chunk, band as u64);
            if let Some(members) = table.get(&h) {
                for m in members {
                    if seen.insert(m, ()).is_none() {
                        out.push(m.clone());
                    }
                }
            }
        }
        out
    }

    /// All candidate pairs across the index: each pair once, ordered
    /// `(min, max)`, with the result sorted — the band tables are
    /// `HashMap`s (RandomState-seeded, so their iteration order changes
    /// per process), and sorting here is what makes the output stable
    /// across runs instead of leaking that order to callers.
    pub fn candidate_pairs(&self) -> Vec<(K, K)>
    where
        K: Ord,
    {
        // Dedup on the fly: near-duplicates collide in *most* bands (that
        // is LSH's point), so buffering every band's copy before a final
        // dedup would hold up to `bands`× the unique pair count in memory.
        let mut pairs: Vec<(K, K)> = Vec::new();
        let mut seen: std::collections::HashSet<(K, K)> = std::collections::HashSet::new();
        // dtlint::allow(map-iter, reason = "`tables` is a Vec; per-table bucket order is erased by the final sort + dedup")
        for table in &self.tables {
            for members in table.values() {
                for i in 0..members.len() {
                    for j in (i + 1)..members.len() {
                        let (a, b) = if members[i] <= members[j] {
                            (members[i].clone(), members[j].clone())
                        } else {
                            (members[j].clone(), members[i].clone())
                        };
                        if a != b && seen.insert((a.clone(), b.clone())) {
                            pairs.push((a, b));
                        }
                    }
                }
            }
        }
        pairs.sort_unstable();
        pairs
    }
}

fn hash_chunk(chunk: &[u64], band: u64) -> u64 {
    let mut h = 0x517cc1b727220a95u64 ^ band;
    for &v in chunk {
        h ^= v;
        h = h.wrapping_mul(0x2545f4914f6cdd1d);
        h ^= h >> 29;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        crate::tokens::tokenize(s)
    }

    #[test]
    fn identical_sets_identical_signatures() {
        let h = MinHasher::new(64, 42);
        let a = h.signature(&toks("the walking dead tv show"));
        let b = h.signature(&toks("the walking dead tv show"));
        assert_eq!(a, b);
        assert_eq!(a.estimate_jaccard(&b), 1.0);
    }

    #[test]
    fn estimate_tracks_true_jaccard() {
        let h = MinHasher::new(256, 7);
        // True Jaccard: 3 shared of 5 union = 0.6
        let a = h.signature(&["a", "b", "c", "d"]);
        let b = h.signature(&["b", "c", "d", "e"]);
        let est = a.estimate_jaccard(&b);
        assert!((est - 0.6).abs() < 0.15, "estimate {est} too far from 0.6");
    }

    #[test]
    fn disjoint_sets_estimate_near_zero() {
        let h = MinHasher::new(128, 1);
        let a = h.signature(&["aaa", "bbb", "ccc"]);
        let b = h.signature(&["xxx", "yyy", "zzz"]);
        assert!(a.estimate_jaccard(&b) < 0.1);
    }

    #[test]
    fn empty_set_signature_is_max() {
        let h = MinHasher::new(4, 0);
        let e = h.signature::<&str>(&[]);
        assert!(e.0.iter().all(|&v| v == u64::MAX));
        assert!(e.is_empty_set());
        assert!(!h.signature(&["token"]).is_empty_set());
    }

    #[test]
    fn empty_signatures_are_not_indexed_and_never_pair() {
        // Two empty token sets band-collide on every band (all-MAX
        // signatures are identical), which used to pair every empty-keyed
        // item with every other. Insert must skip them.
        let h = MinHasher::new(16, 9);
        let mut lsh: MinHashLsh<u32> = MinHashLsh::new(4, 4);
        assert!(!lsh.insert(0, &h.signature::<&str>(&[])));
        assert!(!lsh.insert(1, &h.signature::<&str>(&[])));
        assert!(lsh.insert(2, &h.signature(&["real", "tokens"])));
        assert_eq!(lsh.candidate_pairs(), vec![]);
        assert!(lsh.candidates(&h.signature::<&str>(&[])).is_empty());
    }

    #[test]
    fn candidate_pairs_are_sorted_and_deduplicated() {
        let h = MinHasher::new(16, 3);
        let mut lsh: MinHashLsh<u32> = MinHashLsh::new(4, 4);
        // Three identical sets collide on every band of every table —
        // maximal duplication pressure on the pair expansion.
        for key in [3, 1, 2] {
            lsh.insert(key, &h.signature(&["a", "b", "c"]));
        }
        let pairs = lsh.candidate_pairs();
        assert_eq!(pairs, vec![(1, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn deterministic_across_hashers_with_same_seed() {
        let h1 = MinHasher::new(32, 99);
        let h2 = MinHasher::new(32, 99);
        assert_eq!(h1.signature(&["x", "y"]), h2.signature(&["x", "y"]));
        let h3 = MinHasher::new(32, 100);
        assert_ne!(h1.signature(&["x", "y"]), h3.signature(&["x", "y"]));
    }

    #[test]
    fn lsh_finds_similar_misses_dissimilar() {
        let h = MinHasher::new(32, 5);
        let mut lsh: MinHashLsh<usize> = MinHashLsh::new(8, 4);
        let docs = [
            "matilda the musical at the shubert theatre",
            "matilda musical shubert theatre broadway",
            "completely different unrelated text tokens here",
        ];
        let sigs: Vec<Signature> = docs.iter().map(|d| h.signature(&toks(d))).collect();
        for (i, s) in sigs.iter().enumerate() {
            lsh.insert(i, s);
        }
        let cands = lsh.candidates(&sigs[0]);
        assert!(cands.contains(&0));
        assert!(cands.contains(&1), "similar doc should be a candidate");
        assert!(!cands.contains(&2), "dissimilar doc should not be a candidate");
    }

    #[test]
    fn candidate_pairs_dedup() {
        let h = MinHasher::new(16, 3);
        let mut lsh: MinHashLsh<u32> = MinHashLsh::new(4, 4);
        let s1 = h.signature(&["a", "b", "c"]);
        let s2 = h.signature(&["a", "b", "c"]);
        lsh.insert(1, &s1);
        lsh.insert(2, &s2);
        let pairs = lsh.candidate_pairs();
        assert_eq!(pairs, vec![(1, 2)]);
    }

    #[test]
    #[should_panic(expected = "signature length")]
    fn wrong_signature_length_panics() {
        let h = MinHasher::new(8, 3);
        let mut lsh: MinHashLsh<u32> = MinHashLsh::new(4, 4);
        lsh.insert(0, &h.signature(&["a"]));
    }
}
