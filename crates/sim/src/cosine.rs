//! TF-IDF weighted cosine similarity between token bags.
//!
//! Used by the content-based schema matcher: each attribute's sampled values
//! form a token bag; IDF weights are learned over the corpus of attributes so
//! that ubiquitous tokens ("the", "st", "new") stop dominating scores.

use std::collections::HashMap;

use crate::tokens::tokenize;

/// Inverse document frequency weights learned from a corpus of documents
/// (each document = one token bag).
#[derive(Debug, Clone, Default)]
pub struct TfIdfWeights {
    idf: HashMap<String, f64>,
    num_docs: usize,
}

impl TfIdfWeights {
    /// Fit IDF weights on an iterator of documents (token slices).
    pub fn fit<'a, I, D>(docs: I) -> Self
    where
        I: IntoIterator<Item = D>,
        D: IntoIterator<Item = &'a str>,
    {
        let mut df: HashMap<String, usize> = HashMap::new();
        let mut num_docs = 0usize;
        for doc in docs {
            num_docs += 1;
            let mut seen: Vec<&str> = Vec::new();
            for tok in doc {
                if !seen.contains(&tok) {
                    seen.push(tok);
                    *df.entry(tok.to_owned()).or_insert(0) += 1;
                }
            }
        }
        let idf = df
            // dtlint::allow(map-iter, reason = "entry-wise map construction; no cross-entry accumulation depends on order")
            .into_iter()
            .map(|(tok, d)| {
                // Smoothed IDF, always positive.
                let w = ((1.0 + num_docs as f64) / (1.0 + d as f64)).ln() + 1.0;
                (tok, w)
            })
            .collect();
        TfIdfWeights { idf, num_docs }
    }

    /// Number of documents the weights were fitted on.
    pub fn num_docs(&self) -> usize {
        self.num_docs
    }

    /// IDF weight for a token; unseen tokens get the maximum-rarity weight.
    pub fn idf(&self, token: &str) -> f64 {
        match self.idf.get(token) {
            Some(w) => *w,
            None => ((1.0 + self.num_docs as f64) / 1.0).ln() + 1.0,
        }
    }
}

/// A reusable TF-IDF vectoriser + cosine scorer.
#[derive(Debug, Clone, Default)]
pub struct CosineModel {
    weights: TfIdfWeights,
}

impl CosineModel {
    /// Build from pre-fitted weights.
    pub fn new(weights: TfIdfWeights) -> Self {
        CosineModel { weights }
    }

    /// Fit IDF weights over raw text documents.
    pub fn fit_texts<S: AsRef<str>>(texts: &[S]) -> Self {
        let tokenized: Vec<Vec<String>> =
            texts.iter().map(|t| tokenize(t.as_ref())).collect();
        let weights = TfIdfWeights::fit(
            tokenized.iter().map(|toks| toks.iter().map(String::as_str)),
        );
        CosineModel { weights }
    }

    /// TF-IDF vector of a token slice (L2-normalised).
    pub fn vectorize(&self, tokens: &[String]) -> HashMap<String, f64> {
        let mut tf: HashMap<String, f64> = HashMap::new();
        for t in tokens {
            *tf.entry(t.clone()).or_insert(0.0) += 1.0;
        }
        // The norm is a float accumulation, and float addition is not
        // associative — summing in HashMap iteration order would leak the
        // per-process RandomState seed into every cosine score. Damp and
        // accumulate over the entries sorted by token instead.
        // dtlint::allow(map-iter, reason = "entries are sorted on the next line before the float accumulation")
        let mut entries: Vec<(String, f64)> = tf.into_iter().collect();
        entries.sort_unstable_by(|x, y| x.0.cmp(&y.0));
        let mut norm = 0.0;
        for (tok, f) in entries.iter_mut() {
            // Sub-linear TF damping.
            *f = (1.0 + f.ln()) * self.weights.idf(tok);
            norm += *f * *f;
        }
        let norm = norm.sqrt();
        if norm > 0.0 {
            for (_, f) in entries.iter_mut() {
                *f /= norm;
            }
        }
        entries.into_iter().collect()
    }

    /// Cosine similarity of two raw texts under the fitted weights.
    pub fn similarity(&self, a: &str, b: &str) -> f64 {
        let va = self.vectorize(&tokenize(a));
        let vb = self.vectorize(&tokenize(b));
        dot(&va, &vb).clamp(0.0, 1.0)
    }

    /// Cosine similarity of two pre-tokenised bags.
    pub fn similarity_tokens(&self, a: &[String], b: &[String]) -> f64 {
        dot(&self.vectorize(a), &self.vectorize(b)).clamp(0.0, 1.0)
    }
}

fn dot(a: &HashMap<String, f64>, b: &HashMap<String, f64>) -> f64 {
    // Iterate the smaller map — but in sorted key order: the dot product
    // is a float accumulation, and summing in HashMap iteration order
    // would make similarity scores differ run to run.
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut terms: Vec<(&String, f64)> = small.iter().map(|(k, v)| (k, *v)).collect();
    terms.sort_unstable_by(|x, y| x.0.cmp(y.0));
    terms.into_iter().filter_map(|(k, va)| large.get(k).map(|vb| va * vb)).sum()
}

/// Plain (unweighted) cosine similarity between two texts — useful before
/// any corpus exists to fit IDF on.
pub fn plain_cosine(a: &str, b: &str) -> f64 {
    let model = CosineModel::default();
    model.similarity(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_texts_score_one() {
        let m = CosineModel::fit_texts(&["the shubert theatre", "broadway shows"]);
        assert!((m.similarity("Matilda at the Shubert", "Matilda at the Shubert") - 1.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_texts_score_zero() {
        let m = CosineModel::default();
        assert_eq!(m.similarity("alpha beta", "gamma delta"), 0.0);
    }

    #[test]
    fn empty_inputs() {
        let m = CosineModel::default();
        assert_eq!(m.similarity("", ""), 0.0);
        assert_eq!(m.similarity("x", ""), 0.0);
    }

    #[test]
    fn idf_downweights_common_tokens() {
        // "theatre" appears in every doc; "matilda" in one.
        let docs = vec![
            "shubert theatre",
            "ambassador theatre",
            "gershwin theatre",
            "matilda theatre",
        ];
        let m = CosineModel::fit_texts(&docs);
        // Sharing only the common token scores below sharing the rare one.
        let common_only = m.similarity("shubert theatre", "gershwin theatre");
        let rare_shared = m.similarity("matilda musical", "matilda show");
        assert!(rare_shared > common_only, "{rare_shared} vs {common_only}");
    }

    #[test]
    fn unseen_tokens_get_max_idf() {
        let m = CosineModel::fit_texts(&["a b", "a c"]);
        let w = m.weights.idf("zzz");
        assert!(w >= m.weights.idf("a"));
        assert_eq!(m.weights.num_docs(), 2);
    }

    #[test]
    fn symmetry_and_bounds() {
        let m = CosineModel::fit_texts(&["w 44th st", "b'way and 53rd"]);
        let s1 = m.similarity("225 W. 44th St", "W 44th Street");
        let s2 = m.similarity("W 44th Street", "225 W. 44th St");
        assert!((s1 - s2).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&s1));
    }

    #[test]
    fn plain_cosine_works_without_fit() {
        assert!(plain_cosine("show name", "name of show") > 0.5);
    }
}
