//! Jaccard set similarity over token sets.

use std::collections::{HashMap, HashSet};
use std::hash::Hash;

/// Jaccard similarity `|A ∩ B| / |A ∪ B|`; `1.0` when both sets are empty.
pub fn jaccard<T: Eq + Hash>(a: &HashSet<T>, b: &HashSet<T>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Weighted (multiset) Jaccard: `Σ min(fa, fb) / Σ max(fa, fb)` over the
/// union of keys. Robust when token frequency matters (value-overlap
/// matching between columns with repeated values).
pub fn weighted_jaccard<T: Eq + Hash + Ord>(a: &HashMap<T, f64>, b: &HashMap<T, f64>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    // Float addition is not associative, so accumulating in HashMap
    // iteration order (RandomState-seeded per process) would make the
    // score differ run to run. Walk the key union in sorted order.
    // dtlint::allow(map-iter, reason = "keys are collected and sorted before any float accumulation")
    let mut keys: Vec<&T> = a.keys().chain(b.keys()).collect();
    keys.sort_unstable();
    keys.dedup();
    let mut num = 0.0;
    let mut den = 0.0;
    for k in keys {
        let fa = a.get(k).copied().unwrap_or(0.0);
        let fb = b.get(k).copied().unwrap_or(0.0);
        num += fa.min(fb);
        den += fa.max(fb);
    }
    if den == 0.0 {
        return 1.0;
    }
    num / den
}

/// Exact Jaccard over two **sorted, deduplicated** slices by merge
/// intersection — the allocation-free counterpart of [`jaccard`] for
/// interned token ids (`&[u32]`) prepared once per record.
///
/// Produces bit-identical results to [`jaccard`] over the equivalent sets:
/// the intersection and union counts are the same integers and the final
/// division is the same float expression, so a scorer can swap hash sets
/// for sorted id slices without moving a single score. `1.0` when both
/// slices are empty.
///
/// The caller owns the sorted/deduplicated invariant (it is checked only in
/// debug builds); violating it undercounts the intersection.
pub fn jaccard_sorted<T: Ord>(a: &[T], b: &[T]) -> f64 {
    debug_assert!(a.windows(2).all(|w| w[0] < w[1]), "lhs not sorted/deduped");
    debug_assert!(b.windows(2).all(|w| w[0] < w[1]), "rhs not sorted/deduped");
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Convenience: Jaccard over the token sets of two strings.
pub fn token_jaccard(a: &str, b: &str) -> f64 {
    let sa: HashSet<String> = crate::tokens::tokenize(a).into_iter().collect();
    let sb: HashSet<String> = crate::tokens::tokenize(b).into_iter().collect();
    jaccard(&sa, &sb)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(items: &[&str]) -> HashSet<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn basic_overlap() {
        let a = set(&["a", "b", "c"]);
        let b = set(&["b", "c", "d"]);
        assert!((jaccard(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn identity_disjoint_empty() {
        let a = set(&["x"]);
        assert_eq!(jaccard(&a, &a), 1.0);
        assert_eq!(jaccard(&a, &set(&["y"])), 0.0);
        assert_eq!(jaccard::<String>(&HashSet::new(), &HashSet::new()), 1.0);
        assert_eq!(jaccard(&a, &HashSet::new()), 0.0);
    }

    #[test]
    fn sorted_slices_match_hash_sets() {
        let cases: &[(&[u32], &[u32])] = &[
            (&[1, 2, 3], &[2, 3, 4]),
            (&[5], &[5]),
            (&[1], &[2]),
            (&[], &[]),
            (&[7, 9], &[]),
            (&[0, 1, 2, 3, 4], &[2]),
        ];
        for (a, b) in cases {
            let sa: HashSet<u32> = a.iter().copied().collect();
            let sb: HashSet<u32> = b.iter().copied().collect();
            assert_eq!(
                jaccard_sorted(a, b).to_bits(),
                jaccard(&sa, &sb).to_bits(),
                "{a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn weighted_uses_frequencies() {
        let mut a = HashMap::new();
        a.insert("x", 2.0);
        a.insert("y", 1.0);
        let mut b = HashMap::new();
        b.insert("x", 1.0);
        b.insert("z", 1.0);
        // min sums: x->1; max sums: x->2, y->1, z->1 => 1/4
        assert!((weighted_jaccard(&a, &b) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn weighted_empty_and_zero() {
        let empty: HashMap<&str, f64> = HashMap::new();
        assert_eq!(weighted_jaccard(&empty, &empty), 1.0);
        let mut z = HashMap::new();
        z.insert("x", 0.0);
        assert_eq!(weighted_jaccard(&z, &z), 1.0);
    }

    #[test]
    fn token_jaccard_normalizes_case_and_punct() {
        assert_eq!(token_jaccard("Show Name", "show_name"), 1.0);
        assert!(token_jaccard("cheapest price", "price") > 0.4);
        assert_eq!(token_jaccard("abc", "xyz"), 0.0);
    }
}
