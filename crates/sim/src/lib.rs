//! Similarity measures for Data Tamer.
//!
//! Schema matching, entity consolidation, and the dedup classifier all score
//! candidate pairs with string / token-set / numeric similarities. Everything
//! here is implemented from scratch (the reproduction bands call out that
//! matchers must be hand-rolled) and returns scores normalised to `[0, 1]`
//! where `1` is identity.

pub mod cosine;
pub mod jaccard;
pub mod jaro;
pub mod levenshtein;
pub mod minhash;
pub mod ngram;
pub mod numeric;
pub mod soundex;
pub mod tokens;

pub use cosine::{CosineModel, TfIdfWeights};
pub use jaccard::{jaccard, jaccard_sorted, weighted_jaccard};
pub use jaro::{jaro, jaro_winkler};
pub use levenshtein::{bounded_levenshtein, levenshtein, levenshtein_similarity};
pub use minhash::{MinHashLsh, MinHasher, Signature};
pub use ngram::{char_ngrams, ngram_similarity};
pub use numeric::{overlap_fraction, relative_diff_similarity, stats_similarity};
pub use soundex::soundex;
pub use tokens::{
    for_each_token, normalize_token, tokenize, tokenize_into, FnvBuildHasher, FnvHasher,
    TokenInterner,
};
