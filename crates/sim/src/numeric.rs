//! Numeric similarity measures for values and attribute distributions.

/// Similarity of two scalars based on relative difference:
/// `1 - |a-b| / max(|a|, |b|)`, with `1.0` when both are zero.
pub fn relative_diff_similarity(a: f64, b: f64) -> f64 {
    if a == b {
        return 1.0;
    }
    let denom = a.abs().max(b.abs());
    if denom == 0.0 {
        return 1.0;
    }
    (1.0 - (a - b).abs() / denom).max(0.0)
}

/// Overlap fraction of two closed ranges `[a_min, a_max]`, `[b_min, b_max]`:
/// intersection length over union length (both 0-length at the same point
/// count as full overlap).
pub fn overlap_fraction(a_min: f64, a_max: f64, b_min: f64, b_max: f64) -> f64 {
    debug_assert!(a_min <= a_max && b_min <= b_max);
    let inter = (a_max.min(b_max) - a_min.max(b_min)).max(0.0);
    let union = (a_max.max(b_max) - a_min.min(b_min)).max(0.0);
    if union == 0.0 {
        // Both ranges are single points; overlap iff equal.
        return if a_min == b_min { 1.0 } else { 0.0 };
    }
    inter / union
}

/// A numeric distribution summary for [`stats_similarity`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    pub mean: f64,
    pub std: f64,
    pub min: f64,
    pub max: f64,
}

/// Similarity of two numeric distributions summarised as (mean, std, min, max).
///
/// Combines range overlap with mean proximity scaled by pooled spread. This
/// is the distribution matcher's core: "ticket price" columns from two
/// sources match because their numeric shapes agree even when names differ.
#[allow(clippy::too_many_arguments)]
pub fn stats_similarity(
    a_mean: f64,
    a_std: f64,
    a_min: f64,
    a_max: f64,
    b_mean: f64,
    b_std: f64,
    b_min: f64,
    b_max: f64,
) -> f64 {
    summary_similarity(
        Summary { mean: a_mean, std: a_std, min: a_min, max: a_max },
        Summary { mean: b_mean, std: b_std, min: b_min, max: b_max },
    )
}

/// Struct-argument form of [`stats_similarity`].
pub fn summary_similarity(a: Summary, b: Summary) -> f64 {
    let range = overlap_fraction(a.min, a.max, b.min, b.max);
    let pooled = (a.std.max(1e-9).powi(2) + b.std.max(1e-9).powi(2)).sqrt();
    let spread = (a.max - a.min).abs().max((b.max - b.min).abs()).max(1e-9);
    // Mean distance normalised by the larger of pooled std and 1/4 range.
    let scale = pooled.max(spread / 4.0);
    let mean_sim = (-((a.mean - b.mean).abs() / scale).powi(2)).exp();
    0.5 * range + 0.5 * mean_sim
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_diff_basics() {
        assert_eq!(relative_diff_similarity(10.0, 10.0), 1.0);
        assert_eq!(relative_diff_similarity(0.0, 0.0), 1.0);
        assert!((relative_diff_similarity(10.0, 5.0) - 0.5).abs() < 1e-12);
        assert_eq!(relative_diff_similarity(10.0, -10.0), 0.0);
    }

    #[test]
    fn overlap_cases() {
        assert_eq!(overlap_fraction(0.0, 10.0, 0.0, 10.0), 1.0);
        assert_eq!(overlap_fraction(0.0, 10.0, 20.0, 30.0), 0.0);
        assert!((overlap_fraction(0.0, 10.0, 5.0, 15.0) - (5.0 / 15.0)).abs() < 1e-12);
        assert_eq!(overlap_fraction(3.0, 3.0, 3.0, 3.0), 1.0);
        assert_eq!(overlap_fraction(3.0, 3.0, 4.0, 4.0), 0.0);
        // Point inside a range: intersection 0 length but union positive.
        assert_eq!(overlap_fraction(5.0, 5.0, 0.0, 10.0), 0.0);
    }

    #[test]
    fn stats_similarity_identical_is_high() {
        let s = stats_similarity(50.0, 10.0, 20.0, 100.0, 50.0, 10.0, 20.0, 100.0);
        assert!(s > 0.99);
    }

    #[test]
    fn stats_similarity_separated_is_low() {
        // Prices ~$50 vs years ~2013: totally different distributions.
        let s = stats_similarity(50.0, 20.0, 20.0, 150.0, 2013.0, 1.0, 2010.0, 2014.0);
        assert!(s < 0.1, "got {s}");
    }

    #[test]
    fn stats_similarity_is_symmetric_and_bounded() {
        let a = (55.0, 12.0, 27.0, 99.0);
        let b = (60.0, 15.0, 25.0, 120.0);
        let s1 = stats_similarity(a.0, a.1, a.2, a.3, b.0, b.1, b.2, b.3);
        let s2 = stats_similarity(b.0, b.1, b.2, b.3, a.0, a.1, a.2, a.3);
        assert!((s1 - s2).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&s1));
        assert!(s1 > 0.5, "similar price columns should score well: {s1}");
    }
}
