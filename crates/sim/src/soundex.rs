//! American Soundex phonetic encoding.
//!
//! Used as a cheap blocking key for person-name consolidation: names that
//! sound alike ("Smith"/"Smyth") share a code and land in the same block.

/// Soundex code of a word: first letter + 3 digits (zero padded).
/// Returns `None` when the input contains no ASCII letter.
pub fn soundex(word: &str) -> Option<String> {
    let mut chars = word.chars().filter(|c| c.is_ascii_alphabetic());
    let first = chars.next()?.to_ascii_uppercase();
    let mut code = String::with_capacity(4);
    code.push(first);
    let mut last_digit = digit_of(first);
    for c in chars {
        let d = digit_of(c.to_ascii_uppercase());
        if d == 0 {
            // Vowels (and y) reset adjacency; h/w are transparent.
            if !matches!(c.to_ascii_lowercase(), 'h' | 'w') {
                last_digit = 0;
            }
        } else if d != last_digit {
            code.push(char::from(b'0' + d));
            last_digit = d;
            if code.len() == 4 {
                return Some(code);
            }
        }
    }
    while code.len() < 4 {
        code.push('0');
    }
    Some(code)
}

fn digit_of(c: char) -> u8 {
    match c {
        'B' | 'F' | 'P' | 'V' => 1,
        'C' | 'G' | 'J' | 'K' | 'Q' | 'S' | 'X' | 'Z' => 2,
        'D' | 'T' => 3,
        'L' => 4,
        'M' | 'N' => 5,
        'R' => 6,
        _ => 0, // vowels + h, w, y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_codes() {
        assert_eq!(soundex("Robert").as_deref(), Some("R163"));
        assert_eq!(soundex("Rupert").as_deref(), Some("R163"));
        assert_eq!(soundex("Ashcraft").as_deref(), Some("A261"));
        assert_eq!(soundex("Ashcroft").as_deref(), Some("A261"));
        assert_eq!(soundex("Tymczak").as_deref(), Some("T522"));
        assert_eq!(soundex("Pfister").as_deref(), Some("P236"));
        assert_eq!(soundex("Honeyman").as_deref(), Some("H555"));
    }

    #[test]
    fn similar_names_collide() {
        assert_eq!(soundex("Smith"), soundex("Smyth"));
        assert_eq!(soundex("Gubanov"), soundex("Gubanoff"));
    }

    #[test]
    fn short_and_edge_inputs() {
        assert_eq!(soundex("A").as_deref(), Some("A000"));
        assert_eq!(soundex(""), None);
        assert_eq!(soundex("123"), None);
        assert_eq!(soundex("  o'Brien ").as_deref(), Some("O165"));
    }

    #[test]
    fn case_insensitive() {
        assert_eq!(soundex("STONEBRAKER"), soundex("stonebraker"));
    }
}
