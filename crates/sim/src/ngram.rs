//! Character n-gram decomposition and similarity.

use std::collections::HashSet;

/// Character n-grams of a string, padded with `#` sentinels so that prefix
/// and suffix characters carry full weight (standard q-gram padding).
pub fn char_ngrams(s: &str, n: usize) -> Vec<String> {
    assert!(n >= 1, "n-gram size must be at least 1");
    let chars: Vec<char> = s.chars().collect();
    if chars.is_empty() {
        return Vec::new();
    }
    let mut padded = Vec::with_capacity(chars.len() + 2 * (n - 1));
    padded.extend(std::iter::repeat_n('#', n - 1));
    padded.extend(chars);
    padded.extend(std::iter::repeat_n('#', n - 1));
    padded
        .windows(n)
        .map(|w| w.iter().collect::<String>())
        .collect()
}

/// Jaccard similarity of the n-gram sets of two strings.
pub fn ngram_similarity(a: &str, b: &str, n: usize) -> f64 {
    let sa: HashSet<String> = char_ngrams(a, n).into_iter().collect();
    let sb: HashSet<String> = char_ngrams(b, n).into_iter().collect();
    crate::jaccard::jaccard(&sa, &sb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigrams_of_short_string() {
        assert_eq!(char_ngrams("ab", 2), vec!["#a", "ab", "b#"]);
        assert_eq!(char_ngrams("a", 2), vec!["#a", "a#"]);
        assert_eq!(char_ngrams("", 2), Vec::<String>::new());
    }

    #[test]
    fn unigrams_have_no_padding() {
        assert_eq!(char_ngrams("abc", 1), vec!["a", "b", "c"]);
    }

    #[test]
    fn trigram_count_formula() {
        // With padding of n-1 on both sides: len + n - 1 grams.
        let g = char_ngrams("matilda", 3);
        assert_eq!(g.len(), 7 + 2);
    }

    #[test]
    fn similarity_behaviour() {
        assert_eq!(ngram_similarity("abc", "abc", 2), 1.0);
        assert_eq!(ngram_similarity("abc", "xyz", 2), 0.0);
        let close = ngram_similarity("theater", "theatre", 2);
        let far = ngram_similarity("theater", "matinee", 2);
        assert!(close > far);
        assert!(close > 0.4);
    }

    #[test]
    fn unicode_safe() {
        let g = char_ngrams("café", 2);
        assert!(g.contains(&"fé".to_string()));
        assert_eq!(ngram_similarity("café", "café", 2), 1.0);
    }

    #[test]
    #[should_panic(expected = "n-gram size")]
    fn zero_n_panics() {
        char_ngrams("abc", 0);
    }
}
