//! Levenshtein edit distance.

/// Classic Levenshtein distance (insert / delete / substitute, unit cost),
/// computed over Unicode scalar values with a two-row rolling buffer.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    // Keep the inner loop over the shorter string for cache friendliness.
    let (short, long) = if a.len() <= b.len() { (&a, &b) } else { (&b, &a) };
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut cur = vec![0usize; short.len() + 1];
    for (i, lc) in long.iter().enumerate() {
        cur[0] = i + 1;
        for (j, sc) in short.iter().enumerate() {
            let sub = prev[j] + usize::from(lc != sc);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()]
}

/// Levenshtein distance with an early-exit bound: returns `None` as soon as
/// the distance is guaranteed to exceed `max`. Much faster for blocking-time
/// filtering where most pairs are far apart.
pub fn bounded_levenshtein(a: &str, b: &str, max: usize) -> Option<usize> {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.len().abs_diff(b.len()) > max {
        return None;
    }
    if a.is_empty() {
        return Some(b.len());
    }
    if b.is_empty() {
        return Some(a.len());
    }
    let (short, long) = if a.len() <= b.len() { (&a, &b) } else { (&b, &a) };
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut cur = vec![0usize; short.len() + 1];
    for (i, lc) in long.iter().enumerate() {
        cur[0] = i + 1;
        let mut row_min = cur[0];
        for (j, sc) in short.iter().enumerate() {
            let sub = prev[j] + usize::from(lc != sc);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
            row_min = row_min.min(cur[j + 1]);
        }
        if row_min > max {
            return None;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    let d = prev[short.len()];
    (d <= max).then_some(d)
}

/// Normalised Levenshtein similarity: `1 - distance / max_len`, and `1.0`
/// when both strings are empty.
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_cases() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("same", "same"), 0);
    }

    #[test]
    fn unicode_counts_scalars() {
        assert_eq!(levenshtein("café", "cafe"), 1);
        assert_eq!(levenshtein("€27", "$27"), 1);
    }

    #[test]
    fn symmetric() {
        assert_eq!(levenshtein("theater", "theatre"), levenshtein("theatre", "theater"));
    }

    #[test]
    fn bounded_matches_exact_within_bound() {
        assert_eq!(bounded_levenshtein("kitten", "sitting", 3), Some(3));
        assert_eq!(bounded_levenshtein("kitten", "sitting", 2), None);
        assert_eq!(bounded_levenshtein("abc", "xyzabc", 2), None); // length gap
        assert_eq!(bounded_levenshtein("", "ab", 2), Some(2));
        assert_eq!(bounded_levenshtein("same", "same", 0), Some(0));
    }

    #[test]
    fn similarity_normalises() {
        assert_eq!(levenshtein_similarity("", ""), 1.0);
        assert_eq!(levenshtein_similarity("abc", "abc"), 1.0);
        assert_eq!(levenshtein_similarity("abc", "xyz"), 0.0);
        let s = levenshtein_similarity("theater", "theatre");
        assert!(s > 0.7 && s < 1.0);
    }
}
