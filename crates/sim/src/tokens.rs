//! Lightweight tokenisation shared by the similarity measures.
//!
//! This is deliberately simpler than the full linguistic tokenizer in
//! `datatamer-text`: similarity tokenisation must be cheap (it runs on every
//! candidate pair) and stable (scores must not drift with parser changes).

/// Lowercase a token and strip non-alphanumeric edges.
///
/// Returns `None` when nothing alphanumeric remains.
pub fn normalize_token(raw: &str) -> Option<String> {
    let trimmed = raw.trim_matches(|c: char| !c.is_alphanumeric());
    if trimmed.is_empty() {
        return None;
    }
    Some(trimmed.to_lowercase())
}

/// Visit every normalised word token of `text` in order, without
/// materialising a vector.
///
/// This is the streaming core of [`tokenize`]: consumers that only need to
/// look at each token once (bucket insertion, interning, counting) call it
/// directly and skip the per-call `Vec` — the hot-loop shape blocking and
/// prepared pair scoring rely on. Token boundaries and normalisation are
/// exactly [`tokenize`]'s.
pub fn for_each_token(text: &str, mut f: impl FnMut(String)) {
    let mut cur = String::new();
    let mut prev_lower = false;
    for c in text.chars() {
        let is_word = c.is_alphanumeric();
        let camel_break = c.is_uppercase() && prev_lower;
        if (!is_word || camel_break) && !cur.is_empty() {
            f(std::mem::take(&mut cur).to_lowercase());
        }
        if is_word {
            cur.push(c);
        }
        prev_lower = c.is_lowercase() || c.is_ascii_digit();
    }
    if !cur.is_empty() {
        f(cur.to_lowercase());
    }
}

/// Split into normalised word tokens on whitespace and punctuation
/// boundaries (underscores, hyphens, dots and camelCase also split, which
/// matters for attribute names like `show_name` / `showName` / `Show-Name`).
///
/// The loop is deliberately duplicated from [`for_each_token`] rather than
/// delegated to it: the direct-push form optimises measurably better, and
/// this function sits on the LSH/blocking hot paths.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut prev_lower = false;
    for c in text.chars() {
        let is_word = c.is_alphanumeric();
        let camel_break = c.is_uppercase() && prev_lower;
        if (!is_word || camel_break)
            && !cur.is_empty() {
                out.push(std::mem::take(&mut cur).to_lowercase());
            }
        if is_word {
            cur.push(c);
        }
        prev_lower = c.is_lowercase() || c.is_ascii_digit();
    }
    if !cur.is_empty() {
        out.push(cur.to_lowercase());
    }
    out
}

/// Append the tokens of `text` to `out`, reusing its capacity — the
/// buffer-reuse form of [`tokenize`] for callers tokenising many values in
/// a loop (`out.clear()` between values keeps the allocation).
pub fn tokenize_into(text: &str, out: &mut Vec<String>) {
    for_each_token(text, |tok| out.push(tok));
}

/// FNV-1a offset basis — the canonical 64-bit starting state.
pub(crate) const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// One FNV-1a absorption step over `bytes` from state `h` — the shared
/// core of [`FnvHasher`] and the seeded MinHash functions
/// (`crate::minhash`), so the constants live in exactly one place.
#[inline]
pub(crate) fn fnv1a_step(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// FNV-1a, the interner's hash: tiny state, one multiply per byte — far
/// cheaper than SipHash on short token strings. Non-cryptographic is safe
/// here because the interner never iterates its map (ids are dense and
/// first-seen ordered), so neither iteration order nor collision shape can
/// leak into any output.
#[derive(Debug, Clone, Copy)]
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(FNV_OFFSET_BASIS)
    }
}

impl std::hash::Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        self.0 = fnv1a_step(self.0, bytes);
    }
}

/// `BuildHasher` for [`FnvHasher`]-keyed maps.
pub type FnvBuildHasher = std::hash::BuildHasherDefault<FnvHasher>;

/// Interns token strings to dense `u32` ids (first-seen order).
///
/// One global interner built during a prepare pass turns every later token
/// comparison into an integer comparison: two tokens are equal iff their
/// ids are equal, so set similarities ([`crate::jaccard::jaccard_sorted`])
/// and bucket keys never touch string bytes again. Ids are assigned
/// `0, 1, 2, …` in first-intern order, which makes them directly usable as
/// vector indexes (per-id weights, per-id buckets) and keeps any structure
/// built from them deterministic.
#[derive(Debug, Clone, Default)]
pub struct TokenInterner {
    ids: std::collections::HashMap<String, u32, FnvBuildHasher>,
}

impl TokenInterner {
    /// An empty interner.
    pub fn new() -> Self {
        TokenInterner::default()
    }

    /// Intern an owned token (no allocation either way: the string is
    /// stored on first sight, dropped on a repeat).
    pub fn intern(&mut self, token: String) -> u32 {
        let next = self.ids.len() as u32;
        *self.ids.entry(token).or_insert(next)
    }

    /// Intern a borrowed token, allocating only on first sight.
    pub fn intern_str(&mut self, token: &str) -> u32 {
        if let Some(&id) = self.ids.get(token) {
            return id;
        }
        let id = self.ids.len() as u32;
        self.ids.insert(token.to_owned(), id);
        id
    }

    /// Id of an already-interned token.
    pub fn get(&self, token: &str) -> Option<u32> {
        self.ids.get(token).copied()
    }

    /// Number of distinct tokens interned.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_snake_kebab_dot_camel() {
        assert_eq!(tokenize("show_name"), vec!["show", "name"]);
        assert_eq!(tokenize("Show-Name"), vec!["show", "name"]);
        assert_eq!(tokenize("show.name"), vec!["show", "name"]);
        assert_eq!(tokenize("showName"), vec!["show", "name"]);
        assert_eq!(tokenize("CHEAPEST_PRICE"), vec!["cheapest", "price"]);
    }

    #[test]
    fn keeps_digits_with_letters() {
        assert_eq!(tokenize("44th St"), vec!["44th", "st"]);
        assert_eq!(tokenize("w. 44th"), vec!["w", "44th"]);
    }

    #[test]
    fn empty_and_punct_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("--- ...").is_empty());
    }

    #[test]
    fn streaming_and_buffered_forms_match_tokenize() {
        for text in ["show_name", "La La Land", "44th St", "", "--- ...", "ΣΊΣΥΦΟΣ camelCase"] {
            let expected = tokenize(text);
            let mut streamed = Vec::new();
            for_each_token(text, |t| streamed.push(t));
            assert_eq!(streamed, expected, "{text:?}");
            let mut buffered = vec!["seed".to_owned()];
            tokenize_into(text, &mut buffered);
            assert_eq!(buffered[0], "seed", "tokenize_into must append, not clear");
            assert_eq!(&buffered[1..], expected.as_slice(), "{text:?}");
        }
    }

    #[test]
    fn interner_assigns_dense_first_seen_ids() {
        let mut interner = TokenInterner::new();
        assert!(interner.is_empty());
        let a = interner.intern("show".to_owned());
        let b = interner.intern_str("name");
        assert_eq!((a, b), (0, 1));
        assert_eq!(interner.intern_str("show"), 0, "repeat hits the same id");
        assert_eq!(interner.intern("name".to_owned()), 1);
        assert_eq!(interner.get("name"), Some(1));
        assert_eq!(interner.get("absent"), None);
        assert_eq!(interner.len(), 2);
    }

    #[test]
    fn normalize_strips_edges() {
        assert_eq!(normalize_token("\"Matilda\","), Some("matilda".into()));
        assert_eq!(normalize_token("..."), None);
        assert_eq!(normalize_token("$27"), Some("27".into()));
    }
}
