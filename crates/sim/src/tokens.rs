//! Lightweight tokenisation shared by the similarity measures.
//!
//! This is deliberately simpler than the full linguistic tokenizer in
//! `datatamer-text`: similarity tokenisation must be cheap (it runs on every
//! candidate pair) and stable (scores must not drift with parser changes).

/// Lowercase a token and strip non-alphanumeric edges.
///
/// Returns `None` when nothing alphanumeric remains.
pub fn normalize_token(raw: &str) -> Option<String> {
    let trimmed = raw.trim_matches(|c: char| !c.is_alphanumeric());
    if trimmed.is_empty() {
        return None;
    }
    Some(trimmed.to_lowercase())
}

/// Split into normalised word tokens on whitespace and punctuation
/// boundaries (underscores, hyphens, dots and camelCase also split, which
/// matters for attribute names like `show_name` / `showName` / `Show-Name`).
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut prev_lower = false;
    for c in text.chars() {
        let is_word = c.is_alphanumeric();
        let camel_break = c.is_uppercase() && prev_lower;
        if (!is_word || camel_break)
            && !cur.is_empty() {
                out.push(std::mem::take(&mut cur).to_lowercase());
            }
        if is_word {
            cur.push(c);
        }
        prev_lower = c.is_lowercase() || c.is_ascii_digit();
    }
    if !cur.is_empty() {
        out.push(cur.to_lowercase());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_snake_kebab_dot_camel() {
        assert_eq!(tokenize("show_name"), vec!["show", "name"]);
        assert_eq!(tokenize("Show-Name"), vec!["show", "name"]);
        assert_eq!(tokenize("show.name"), vec!["show", "name"]);
        assert_eq!(tokenize("showName"), vec!["show", "name"]);
        assert_eq!(tokenize("CHEAPEST_PRICE"), vec!["cheapest", "price"]);
    }

    #[test]
    fn keeps_digits_with_letters() {
        assert_eq!(tokenize("44th St"), vec!["44th", "st"]);
        assert_eq!(tokenize("w. 44th"), vec!["w", "44th"]);
    }

    #[test]
    fn empty_and_punct_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("--- ...").is_empty());
    }

    #[test]
    fn normalize_strips_edges() {
        assert_eq!(normalize_token("\"Matilda\","), Some("matilda".into()));
        assert_eq!(normalize_token("..."), None);
        assert_eq!(normalize_token("$27"), Some("27".into()));
    }
}
