//! Jaro and Jaro-Winkler similarity.
//!
//! Jaro-Winkler is the workhorse for short name-like strings (show titles,
//! person names, attribute names): it is tolerant of transpositions and
//! rewards common prefixes, which suits typo-style dirt.

/// Jaro similarity in `[0, 1]`.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches = 0usize;
    let mut a_matched: Vec<char> = Vec::new();
    for (i, ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == *ca {
                b_used[j] = true;
                matches += 1;
                a_matched.push(*ca);
                break;
            }
        }
    }
    if matches == 0 {
        return 0.0;
    }
    let b_matched: Vec<char> = b
        .iter()
        .zip(b_used.iter())
        .filter_map(|(c, used)| used.then_some(*c))
        .collect();
    let transpositions = a_matched
        .iter()
        .zip(b_matched.iter())
        .filter(|(x, y)| x != y)
        .count()
        / 2;
    let m = matches as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - transpositions as f64) / m) / 3.0
}

/// Jaro-Winkler similarity with standard prefix scale 0.1 and prefix cap 4.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count();
    (j + prefix as f64 * 0.1 * (1.0 - j)).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-3
    }

    #[test]
    fn textbook_jaro() {
        assert!(close(jaro("MARTHA", "MARHTA"), 0.944));
        assert!(close(jaro("DIXON", "DICKSONX"), 0.767));
        assert!(close(jaro("JELLYFISH", "SMELLYFISH"), 0.896));
    }

    #[test]
    fn textbook_jaro_winkler() {
        assert!(close(jaro_winkler("MARTHA", "MARHTA"), 0.961));
        assert!(close(jaro_winkler("DIXON", "DICKSONX"), 0.813));
    }

    #[test]
    fn identity_and_disjoint() {
        assert_eq!(jaro("abc", "abc"), 1.0);
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("abc", ""), 0.0);
        assert_eq!(jaro("abc", "xyz"), 0.0);
        assert_eq!(jaro_winkler("abc", "abc"), 1.0);
    }

    #[test]
    fn symmetric() {
        let pairs = [("Matilda", "Mathilda"), ("Shubert", "Schubert"), ("a", "ab")];
        for (x, y) in pairs {
            assert!(close(jaro(x, y), jaro(y, x)));
            assert!(close(jaro_winkler(x, y), jaro_winkler(y, x)));
        }
    }

    #[test]
    fn winkler_rewards_prefix() {
        // Same Jaro, different shared prefix -> JW prefers the prefix match.
        let with_prefix = jaro_winkler("theater", "theatre");
        let plain = jaro("theater", "theatre");
        assert!(with_prefix >= plain);
        assert!(jaro_winkler("prefix_abc", "prefix_xyz") > jaro("prefix_abc", "prefix_xyz"));
    }

    #[test]
    fn bounded_in_unit_interval() {
        for (x, y) in [("Matilda", "The Wolverine"), ("", "x"), ("aa", "aaaa")] {
            let s = jaro_winkler(x, y);
            assert!((0.0..=1.0).contains(&s), "{x} {y} -> {s}");
        }
    }
}
