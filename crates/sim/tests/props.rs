//! Property tests for the similarity measures: bounds, symmetry, identity,
//! and cross-implementation agreement.

use proptest::prelude::*;

use datatamer_sim::{
    bounded_levenshtein, jaccard, jaccard_sorted, jaro, jaro_winkler, levenshtein,
    levenshtein_similarity, ngram_similarity, soundex, tokenize, MinHasher, TokenInterner,
};

fn word() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9' ]{0,20}"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn levenshtein_is_a_metric(a in word(), b in word(), c in word()) {
        let dab = levenshtein(&a, &b);
        let dba = levenshtein(&b, &a);
        prop_assert_eq!(dab, dba, "symmetry");
        prop_assert_eq!(levenshtein(&a, &a), 0, "identity");
        // Triangle inequality.
        let dac = levenshtein(&a, &c);
        let dcb = levenshtein(&c, &b);
        prop_assert!(dab <= dac + dcb, "triangle: {} > {} + {}", dab, dac, dcb);
    }

    #[test]
    fn bounded_levenshtein_agrees_with_exact(a in word(), b in word(), max in 0usize..30) {
        let exact = levenshtein(&a, &b);
        match bounded_levenshtein(&a, &b, max) {
            Some(d) => {
                prop_assert_eq!(d, exact);
                prop_assert!(d <= max);
            }
            None => prop_assert!(exact > max),
        }
    }

    #[test]
    fn similarity_scores_are_bounded_and_symmetric(a in word(), b in word()) {
        for (name, s_ab, s_ba) in [
            ("jaro", jaro(&a, &b), jaro(&b, &a)),
            ("jaro_winkler", jaro_winkler(&a, &b), jaro_winkler(&b, &a)),
            ("lev_sim", levenshtein_similarity(&a, &b), levenshtein_similarity(&b, &a)),
            ("ngram2", ngram_similarity(&a, &b, 2), ngram_similarity(&b, &a, 2)),
        ] {
            prop_assert!((0.0..=1.0).contains(&s_ab), "{name} out of bounds: {s_ab}");
            prop_assert!((s_ab - s_ba).abs() < 1e-9, "{name} asymmetric: {s_ab} vs {s_ba}");
        }
    }

    #[test]
    fn identity_scores_one(a in "[a-zA-Z0-9]{1,20}") {
        prop_assert_eq!(jaro(&a, &a), 1.0);
        prop_assert_eq!(jaro_winkler(&a, &a), 1.0);
        prop_assert_eq!(levenshtein_similarity(&a, &a), 1.0);
        prop_assert_eq!(ngram_similarity(&a, &a, 2), 1.0);
    }

    #[test]
    fn jaccard_bounds_and_identity(
        xs in prop::collection::hash_set("[a-z]{1,5}", 0..10),
        ys in prop::collection::hash_set("[a-z]{1,5}", 0..10),
    ) {
        let j = jaccard(&xs, &ys);
        prop_assert!((0.0..=1.0).contains(&j));
        prop_assert!((jaccard(&xs, &xs) - 1.0).abs() < 1e-12);
        prop_assert!((j - jaccard(&ys, &xs)).abs() < 1e-12);
        if xs.is_disjoint(&ys) && !(xs.is_empty() && ys.is_empty()) {
            prop_assert_eq!(j, 0.0);
        }
    }

    #[test]
    fn soundex_shape(word in "[a-zA-Z]{1,16}") {
        let code = soundex(&word).expect("alphabetic input");
        prop_assert_eq!(code.len(), 4);
        let mut chars = code.chars();
        prop_assert!(chars.next().unwrap().is_ascii_uppercase());
        prop_assert!(chars.all(|c| c.is_ascii_digit()));
        // Case-insensitive.
        prop_assert_eq!(soundex(&word.to_lowercase()), soundex(&word.to_uppercase()));
    }

    #[test]
    fn minhash_identity_and_bounds(text in "[a-z ]{1,60}") {
        let hasher = MinHasher::new(64, 7);
        let toks = tokenize(&text);
        let sig = hasher.signature(&toks);
        prop_assert_eq!(sig.estimate_jaccard(&sig), 1.0);
        let other = hasher.signature(&["zzzqqq"]);
        let est = sig.estimate_jaccard(&other);
        prop_assert!((0.0..=1.0).contains(&est));
    }

    #[test]
    fn interner_growth_preserves_ids(
        // A narrow alphabet so the two batches collide heavily — the
        // interesting case is batch B re-interning batch A's tokens.
        batch_a in prop::collection::vec("[a-c]{1,3}", 0..20),
        batch_b in prop::collection::vec("[a-c]{1,3}", 0..20),
    ) {
        // Incremental ER's resident state depends on interning being
        // append-only: interning A then growing with B must assign exactly
        // the ids a single pass over A∥B would, so features prepared
        // before a growth step stay bit-identical after it.
        let mut grown = TokenInterner::new();
        let ids_a: Vec<u32> = batch_a.iter().map(|t| grown.intern_str(t)).collect();
        let ids_b: Vec<u32> = batch_b.iter().map(|t| grown.intern_str(t)).collect();

        let mut oneshot = TokenInterner::new();
        let all_ids: Vec<u32> =
            batch_a.iter().chain(&batch_b).map(|t| oneshot.intern_str(t)).collect();

        let grown_ids: Vec<u32> = ids_a.iter().chain(&ids_b).copied().collect();
        prop_assert_eq!(&grown_ids, &all_ids, "two-phase interning reassigned an id");
        prop_assert_eq!(grown.len(), oneshot.len());
        for t in batch_a.iter().chain(&batch_b) {
            prop_assert_eq!(grown.get(t), oneshot.get(t), "lookup diverged for {}", t);
        }

        // Downstream set similarity over the interned ids is therefore
        // unchanged by *when* the interner grew.
        let as_set = |ids: &[u32]| {
            let mut v = ids.to_vec();
            v.sort_unstable();
            v.dedup();
            v
        };
        let j_grown = jaccard_sorted(&as_set(&ids_a), &as_set(&ids_b));
        let j_oneshot = jaccard_sorted(
            &as_set(&all_ids[..batch_a.len()]),
            &as_set(&all_ids[batch_a.len()..]),
        );
        prop_assert_eq!(j_grown.to_bits(), j_oneshot.to_bits());
    }

    #[test]
    fn tokenize_produces_lowercase_alnum(text in ".{0,60}") {
        for tok in tokenize(&text) {
            prop_assert!(!tok.is_empty());
            // Lowercasing is idempotent on tokens. (Some uppercase-category
            // characters, e.g. 𝐀 U+1D400, have no lowercase mapping; they
            // are their own canonical form.)
            prop_assert_eq!(tok.to_lowercase(), tok.clone(), "token not canonical: {}", tok);
            prop_assert!(tok.chars().any(char::is_alphanumeric));
        }
    }
}
