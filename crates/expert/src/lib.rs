//! Expert sourcing — Data Tamer's "unique expert-sourcing mechanism for
//! obtaining human guidance".
//!
//! Suggestions falling between the escalation and acceptance thresholds are
//! packaged as tasks, queued by priority, routed to (simulated) domain
//! experts, and resolved by weighted vote:
//!
//! * [`task`] — task kinds (schema-match confirmation, duplicate
//!   confirmation), ids, priorities.
//! * [`queue`] — a priority task queue with domain routing.
//! * [`oracle`] — simulated experts with configurable accuracy and response
//!   cost, answering from generator ground truth.
//! * [`resolve`] — weighted-majority aggregation of expert responses.

pub mod oracle;
pub mod queue;
pub mod resolve;
pub mod task;

pub use oracle::SimulatedExpert;
pub use queue::ExpertQueue;
pub use resolve::{resolve_votes, Vote};
pub use task::{ExpertTask, TaskId, TaskKind};
