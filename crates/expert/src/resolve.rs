//! Weighted-majority resolution of expert responses.

/// One expert's response with its weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Vote {
    /// The yes/no answer.
    pub answer: bool,
    /// Vote weight (≥ 0; typically the expert's log-odds accuracy).
    pub weight: f64,
}

/// Resolve votes by weighted majority.
///
/// Returns `(decision, confidence)` where confidence is the winning side's
/// share of total weight (0.5 = dead heat, 1.0 = unanimous). Ties and empty
/// vote sets resolve to `false` at confidence 0.5 — refusing a mapping is
/// the safe default in curation.
pub fn resolve_votes(votes: &[Vote]) -> (bool, f64) {
    let mut yes = 0.0;
    let mut no = 0.0;
    for v in votes {
        debug_assert!(v.weight >= 0.0, "weights must be non-negative");
        if v.answer {
            yes += v.weight;
        } else {
            no += v.weight;
        }
    }
    let total = yes + no;
    if total == 0.0 || yes == no {
        return (false, 0.5);
    }
    if yes > no {
        (true, yes / total)
    } else {
        (false, no / total)
    }
}

/// Minimum number of experts to consult for a target confidence, assuming
/// homogeneous accuracy `p` and simple majority — the budget planner used
/// by the expert-sourcing ablation.
pub fn experts_needed(p: f64, target_confidence: f64) -> usize {
    assert!(p > 0.5 && p < 1.0, "expert accuracy must be in (0.5, 1)");
    assert!((0.5..1.0).contains(&target_confidence), "target in [0.5, 1)");
    // Probability a majority of n experts is correct (n odd): increase n
    // until it clears the target.
    let mut n = 1usize;
    loop {
        let prob = majority_correct_prob(p, n);
        if prob >= target_confidence || n >= 99 {
            return n;
        }
        n += 2;
    }
}

fn majority_correct_prob(p: f64, n: usize) -> f64 {
    // Sum over k > n/2 of C(n,k) p^k (1-p)^(n-k).
    let mut total = 0.0;
    for k in (n / 2 + 1)..=n {
        total += binomial(n, k) * p.powi(k as i32) * (1.0 - p).powi((n - k) as i32);
    }
    total
}

fn binomial(n: usize, k: usize) -> f64 {
    let k = k.min(n - k);
    let mut acc = 1.0;
    for i in 0..k {
        acc = acc * (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(answer: bool, weight: f64) -> Vote {
        Vote { answer, weight }
    }

    #[test]
    fn unanimous_and_split() {
        assert_eq!(resolve_votes(&[v(true, 1.0), v(true, 1.0)]), (true, 1.0));
        let (d, c) = resolve_votes(&[v(true, 3.0), v(false, 1.0)]);
        assert!(d);
        assert!((c - 0.75).abs() < 1e-12);
    }

    #[test]
    fn weights_can_flip_majorities() {
        // Two weak yeses vs one strong no.
        let (d, _) = resolve_votes(&[v(true, 0.4), v(true, 0.4), v(false, 1.0)]);
        assert!(!d, "weighted no outvotes two weak yeses");
    }

    #[test]
    fn ties_and_empty_refuse() {
        assert_eq!(resolve_votes(&[]), (false, 0.5));
        assert_eq!(resolve_votes(&[v(true, 1.0), v(false, 1.0)]), (false, 0.5));
        assert_eq!(resolve_votes(&[v(true, 0.0)]), (false, 0.5), "zero-weight only");
    }

    #[test]
    fn experts_needed_grows_with_target() {
        let cheap = experts_needed(0.8, 0.8);
        let strict = experts_needed(0.8, 0.99);
        assert!(strict > cheap, "{cheap} vs {strict}");
        assert_eq!(experts_needed(0.9, 0.85), 1, "one good expert suffices");
        // Odd panel sizes only.
        assert_eq!(strict % 2, 1);
    }

    #[test]
    fn majority_probability_sanity() {
        assert!((majority_correct_prob(0.8, 1) - 0.8).abs() < 1e-12);
        // 3 experts at 0.8: p^3 + 3 p^2 (1-p) = 0.512 + 0.384 = 0.896
        assert!((majority_correct_prob(0.8, 3) - 0.896).abs() < 1e-9);
        assert!(majority_correct_prob(0.8, 5) > majority_correct_prob(0.8, 3));
    }

    #[test]
    #[should_panic(expected = "accuracy")]
    fn planner_rejects_coin_flippers() {
        experts_needed(0.5, 0.9);
    }
}
