//! Expert task definitions.

/// Task identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u64);

/// What the expert is being asked.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskKind {
    /// "Does source attribute `source_attr` map to global attribute
    /// `candidate`?" (score attached for context, as in Fig 2's drop-down).
    SchemaMatch { source_attr: String, candidate: String, score: f64 },
    /// "Do these two surface forms denote the same entity?"
    DupConfirm { a: String, b: String },
}

impl TaskKind {
    /// Routing domain for the task (experts declare domains they cover).
    pub fn domain(&self) -> &'static str {
        match self {
            TaskKind::SchemaMatch { .. } => "schema",
            TaskKind::DupConfirm { .. } => "dedup",
        }
    }
}

/// A queued expert task.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpertTask {
    /// Unique id.
    pub id: TaskId,
    /// The question.
    pub kind: TaskKind,
    /// Priority; higher pops first. Integration sets priority by how close
    /// the score sits to the acceptance threshold (most ambiguous first).
    pub priority: u32,
}

impl ExpertTask {
    /// Create a task.
    pub fn new(id: TaskId, kind: TaskKind, priority: u32) -> Self {
        ExpertTask { id, kind, priority }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domains_route_by_kind() {
        let s = TaskKind::SchemaMatch {
            source_attr: "cost".into(),
            candidate: "cheapest_price".into(),
            score: 0.6,
        };
        assert_eq!(s.domain(), "schema");
        let d = TaskKind::DupConfirm { a: "Matilda".into(), b: "matilda".into() };
        assert_eq!(d.domain(), "dedup");
    }

    #[test]
    fn construction() {
        let t = ExpertTask::new(TaskId(1), TaskKind::DupConfirm { a: "x".into(), b: "y".into() }, 7);
        assert_eq!(t.id, TaskId(1));
        assert_eq!(t.priority, 7);
    }
}
