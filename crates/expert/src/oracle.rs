//! Simulated domain experts.
//!
//! The paper's expert sourcing routes questions to human domain experts.
//! Experiments need that loop closed without humans, so the oracle answers
//! from generator ground truth with a configurable error rate — letting the
//! benches measure how integration quality responds to expert accuracy
//! (perfect, realistic, adversarial).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A simulated expert.
#[derive(Debug)]
pub struct SimulatedExpert {
    /// Expert name (for reports).
    pub name: String,
    /// Domain the expert answers ("schema", "dedup", ...).
    pub domain: String,
    /// Probability an answer is correct.
    pub accuracy: f64,
    /// Cost charged per answered task (abstract units; benches sum it).
    pub cost_per_task: f64,
    rng: StdRng,
    answered: u64,
}

impl SimulatedExpert {
    /// Create an expert.
    pub fn new(
        name: impl Into<String>,
        domain: impl Into<String>,
        accuracy: f64,
        cost_per_task: f64,
        seed: u64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&accuracy), "accuracy must be a probability");
        SimulatedExpert {
            name: name.into(),
            domain: domain.into(),
            accuracy,
            cost_per_task,
            rng: StdRng::seed_from_u64(seed),
            answered: 0,
        }
    }

    /// Answer a yes/no task whose true answer is `truth`.
    pub fn answer(&mut self, truth: bool) -> bool {
        self.answered += 1;
        if self.rng.random_bool(self.accuracy) {
            truth
        } else {
            !truth
        }
    }

    /// Confidence weight for vote aggregation (log-odds of accuracy,
    /// clamped; a coin-flip expert weighs nothing).
    pub fn vote_weight(&self) -> f64 {
        let a = self.accuracy.clamp(0.01, 0.99);
        (a / (1.0 - a)).ln().max(0.0)
    }

    /// Tasks answered so far.
    pub fn answered(&self) -> u64 {
        self.answered
    }

    /// Total cost incurred so far.
    pub fn total_cost(&self) -> f64 {
        self.answered as f64 * self.cost_per_task
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_expert_always_right() {
        let mut e = SimulatedExpert::new("alice", "schema", 1.0, 2.0, 1);
        for truth in [true, false, true] {
            assert_eq!(e.answer(truth), truth);
        }
        assert_eq!(e.answered(), 3);
        assert_eq!(e.total_cost(), 6.0);
    }

    #[test]
    fn adversarial_expert_always_wrong() {
        let mut e = SimulatedExpert::new("mallory", "dedup", 0.0, 1.0, 2);
        assert!(!e.answer(true));
        assert!(e.answer(false));
    }

    #[test]
    fn noisy_expert_error_rate_converges() {
        let mut e = SimulatedExpert::new("bob", "schema", 0.8, 1.0, 3);
        let n = 5_000;
        let correct = (0..n).filter(|_| e.answer(true)).count();
        let rate = correct as f64 / n as f64;
        assert!((rate - 0.8).abs() < 0.03, "observed accuracy {rate}");
    }

    #[test]
    fn vote_weights_order_by_accuracy() {
        let strong = SimulatedExpert::new("s", "d", 0.95, 1.0, 4).vote_weight();
        let weak = SimulatedExpert::new("w", "d", 0.6, 1.0, 5).vote_weight();
        let coin = SimulatedExpert::new("c", "d", 0.5, 1.0, 6).vote_weight();
        assert!(strong > weak);
        assert!(weak > coin);
        assert_eq!(coin, 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = SimulatedExpert::new("a", "d", 0.7, 1.0, 9);
        let mut b = SimulatedExpert::new("b", "d", 0.7, 1.0, 9);
        let va: Vec<bool> = (0..50).map(|_| a.answer(true)).collect();
        let vb: Vec<bool> = (0..50).map(|_| b.answer(true)).collect();
        assert_eq!(va, vb);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_accuracy_panics() {
        SimulatedExpert::new("x", "d", 1.5, 1.0, 0);
    }
}
