//! Priority task queue with domain routing.

use std::collections::BinaryHeap;

use crate::task::{ExpertTask, TaskId, TaskKind};

#[derive(Debug, PartialEq, Eq)]
struct QueueEntry {
    priority: u32,
    // Reverse insertion tiebreak: FIFO among equal priorities.
    seq: std::cmp::Reverse<u64>,
    id: TaskId,
}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.priority.cmp(&other.priority).then_with(|| self.seq.cmp(&other.seq))
    }
}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A queue of expert tasks, popped highest-priority first (FIFO on ties),
/// optionally filtered by expert domain.
#[derive(Debug, Default)]
pub struct ExpertQueue {
    heap: BinaryHeap<QueueEntry>,
    tasks: std::collections::HashMap<TaskId, ExpertTask>,
    next_id: u64,
    next_seq: u64,
}

impl ExpertQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pending tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Submit a task; the queue assigns the id.
    pub fn submit(&mut self, kind: TaskKind, priority: u32) -> TaskId {
        let id = TaskId(self.next_id);
        self.next_id += 1;
        let task = ExpertTask::new(id, kind, priority);
        self.heap.push(QueueEntry { priority, seq: std::cmp::Reverse(self.next_seq), id });
        self.next_seq += 1;
        self.tasks.insert(id, task);
        id
    }

    /// Pop the highest-priority pending task.
    pub fn pop(&mut self) -> Option<ExpertTask> {
        while let Some(entry) = self.heap.pop() {
            if let Some(task) = self.tasks.remove(&entry.id) {
                return Some(task);
            }
            // Stale heap entry for a cancelled task: skip.
        }
        None
    }

    /// Pop the highest-priority task an expert of `domain` can answer.
    pub fn pop_for_domain(&mut self, domain: &str) -> Option<ExpertTask> {
        // Drain into a side buffer until a matching task appears, then
        // restore the skipped ones.
        let mut skipped = Vec::new();
        let mut found = None;
        while let Some(entry) = self.heap.pop() {
            match self.tasks.get(&entry.id) {
                Some(task) if task.kind.domain() == domain => {
                    let task = self.tasks.remove(&entry.id).expect("present");
                    found = Some(task);
                    break;
                }
                Some(_) => skipped.push(entry),
                None => {} // stale
            }
        }
        for e in skipped {
            self.heap.push(e);
        }
        found
    }

    /// Cancel a pending task. Returns whether it existed.
    pub fn cancel(&mut self, id: TaskId) -> bool {
        self.tasks.remove(&id).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dup(a: &str) -> TaskKind {
        TaskKind::DupConfirm { a: a.into(), b: "x".into() }
    }

    fn schema(attr: &str) -> TaskKind {
        TaskKind::SchemaMatch { source_attr: attr.into(), candidate: "g".into(), score: 0.5 }
    }

    #[test]
    fn pops_by_priority_then_fifo() {
        let mut q = ExpertQueue::new();
        q.submit(dup("low"), 1);
        q.submit(dup("high"), 9);
        q.submit(dup("mid_first"), 5);
        q.submit(dup("mid_second"), 5);
        let order: Vec<String> = std::iter::from_fn(|| q.pop())
            .map(|t| match t.kind {
                TaskKind::DupConfirm { a, .. } => a,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec!["high", "mid_first", "mid_second", "low"]);
        assert!(q.is_empty());
    }

    #[test]
    fn domain_routing_skips_other_kinds() {
        let mut q = ExpertQueue::new();
        q.submit(dup("d1"), 9);
        q.submit(schema("s1"), 5);
        q.submit(dup("d2"), 1);
        let t = q.pop_for_domain("schema").unwrap();
        assert_eq!(t.kind.domain(), "schema");
        assert_eq!(q.len(), 2, "skipped tasks restored");
        // Next schema pop finds nothing.
        assert!(q.pop_for_domain("schema").is_none());
        assert_eq!(q.len(), 2);
        // Dedup pops still honour priority.
        let t = q.pop_for_domain("dedup").unwrap();
        assert!(matches!(t.kind, TaskKind::DupConfirm { ref a, .. } if a == "d1"));
    }

    #[test]
    fn cancel_makes_heap_entry_stale() {
        let mut q = ExpertQueue::new();
        let id = q.submit(dup("gone"), 9);
        q.submit(dup("stays"), 1);
        assert!(q.cancel(id));
        assert!(!q.cancel(id));
        let t = q.pop().unwrap();
        assert!(matches!(t.kind, TaskKind::DupConfirm { ref a, .. } if a == "stays"));
        assert!(q.pop().is_none());
    }
}
