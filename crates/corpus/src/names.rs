//! Name pools for the synthetic corpus.
//!
//! Pools cover every entity type of the paper's Table III. The show list is
//! anchored on Table IV's ten "most discussed award-winning movies/shows" so
//! the top-k reproduction can emerge from generated data, padded with other
//! real Broadway-era titles for realistic variety.

use rand::RngExt;

/// Table IV's top-10 most discussed award-winning movies/shows, in the
/// paper's order.
pub const TABLE_IV_SHOWS: [&str; 10] = [
    "The Walking Dead",
    "Written",
    "Mean Streets",
    "Goodfellas",
    "Matilda",
    "The Wolverine",
    "Trees Lounge",
    "Raging Bull",
    "Berkeley in the Sixties",
    "Never Should Have",
];

/// Additional award-winning titles (discussed less than the Table IV ten).
pub const OTHER_AWARD_SHOWS: [&str; 14] = [
    "Kinky Boots",
    "Pippin",
    "Once",
    "The Book of Mormon",
    "Annie",
    "Cinderella",
    "Lucky Guy",
    "Vanya and Sonia",
    "The Nance",
    "Ann",
    "Motown",
    "Bring It On",
    "The Assembled Parties",
    "Virginia Woolf",
];

/// Popular but *not* award-winning titles — heavily discussed noise that the
/// Table IV query must filter out.
pub const NON_AWARD_SHOWS: [&str; 8] = [
    "Spider-Man Turn Off the Dark",
    "Rock of Ages",
    "Mamma Mia",
    "Jersey Boys",
    "Newsies",
    "Wicked",
    "Chicago",
    "The Lion King",
];

/// Broadway theatres with street addresses (feeds FTABLES and Table VI).
pub const THEATERS: [(&str, &str); 12] = [
    ("Shubert", "225 W. 44th St between 7th and 8th"),
    ("Ambassador", "219 W. 49th St between Broadway and 8th"),
    ("Gershwin", "222 W. 51st St between Broadway and 8th"),
    ("Imperial", "249 W. 45th St between Broadway and 8th"),
    ("Majestic", "245 W. 44th St between 7th and 8th"),
    ("Winter Garden", "1634 Broadway at 50th"),
    ("Al Hirschfeld", "302 W. 45th St between 8th and 9th"),
    ("Ethel Barrymore", "243 W. 47th St between Broadway and 8th"),
    ("Eugene O'Neill", "230 W. 49th St between Broadway and 8th"),
    ("Palace", "1564 Broadway at 47th"),
    ("Lyceum", "149 W. 45th St between 6th and 7th"),
    ("St. James", "246 W. 44th St between 7th and 8th"),
];

/// First names for synthetic people.
pub const FIRST_NAMES: [&str; 24] = [
    "James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael", "Linda", "David",
    "Elizabeth", "William", "Barbara", "Richard", "Susan", "Joseph", "Jessica", "Thomas",
    "Sarah", "Daniel", "Karen", "Matthew", "Nancy", "Anthony", "Lisa",
];

/// Last names for synthetic people.
pub const LAST_NAMES: [&str; 24] = [
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller", "Davis", "Rodriguez",
    "Martinez", "Hernandez", "Lopez", "Gonzalez", "Wilson", "Anderson", "Thomas", "Taylor",
    "Moore", "Jackson", "Martin", "Lee", "Perez", "Thompson", "White",
];

/// Company stems; designators are appended by the generator.
pub const COMPANY_STEMS: [&str; 16] = [
    "Recorded Future", "Acme Media", "Global Data", "Blue Harbor", "Northlight", "Vertex",
    "Pinnacle Arts", "Crestview", "Silverline", "Broadway Across America", "Stagecraft",
    "Marquee Partners", "Footlight", "Curtain Call", "Playbill Media", "Encore Analytics",
];

/// Organizations (non-company).
pub const ORGANIZATIONS: [&str; 10] = [
    "Actors Equity Association",
    "The Broadway League",
    "Lincoln Center",
    "Roundabout Theatre Company",
    "Manhattan Theatre Club",
    "Second Stage",
    "The Public Theater",
    "Theatre Development Fund",
    "Dramatists Guild",
    "Stage Directors Society",
];

/// Cities.
pub const CITIES: [&str; 14] = [
    "New York", "London", "Chicago", "Boston", "Toronto", "Los Angeles", "San Francisco",
    "Philadelphia", "Washington", "Seattle", "Denver", "Austin", "Atlanta", "Minneapolis",
];

/// Geo entities beyond cities (regions, landmarks, districts).
pub const GEO_ENTITIES: [&str; 10] = [
    "Broadway", "Times Square", "West End", "Manhattan", "Brooklyn", "Hudson River",
    "Central Park", "Lincoln Tunnel", "New England", "Silicon Valley",
];

/// Industry terms.
pub const INDUSTRY_TERMS: [&str; 12] = [
    "box office", "gross receipts", "previews", "matinee", "touring production", "revival",
    "cast recording", "standing ovation", "opening night", "ticket sales", "subscription",
    "premium seating",
];

/// Position titles.
pub const POSITIONS: [&str; 10] = [
    "producer", "director", "CEO", "playwright", "composer", "president", "chairman",
    "actress", "actor", "manager",
];

/// Products.
pub const PRODUCTS: [&str; 10] = [
    "iPhone", "Kindle", "PlayStation", "Walkman", "ThinkPad", "Crest Whitestrips",
    "Diet Coke", "Air Jordan", "Instant Pot", "Gore-Tex",
];

/// Facilities (non-theatre).
pub const FACILITIES: [&str; 8] = [
    "Madison Square Garden", "Radio City Music Hall", "Carnegie Hall", "Barclays Center",
    "Javits Center", "Grand Central Terminal", "Penn Station", "Yankee Stadium",
];

/// Medical conditions.
pub const MEDICAL_CONDITIONS: [&str; 8] = [
    "influenza", "laryngitis", "migraine", "asthma", "tendonitis", "vertigo", "insomnia",
    "bronchitis",
];

/// Technologies.
pub const TECHNOLOGIES: [&str; 8] = [
    "machine learning", "cloud computing", "3D printing", "LED lighting", "motion capture",
    "augmented reality", "fiber optics", "solar panels",
];

/// Provinces / states.
pub const PROVINCES: [&str; 10] = [
    "New York State", "California", "Ontario", "Massachusetts", "Illinois", "Texas",
    "Quebec", "New Jersey", "Connecticut", "Pennsylvania",
];

/// URL hosts for synthetic links.
pub const URL_HOSTS: [&str; 8] = [
    "playbill.com", "broadway.org", "nytimes.com", "variety.com", "theatermania.com",
    "recordedfuture.com", "backstage.com", "timeout.com",
];

/// All award-winning titles (Table IV ten + others).
pub fn award_winning_shows() -> Vec<&'static str> {
    TABLE_IV_SHOWS.iter().chain(OTHER_AWARD_SHOWS.iter()).copied().collect()
}

/// Every show title, award-winning first.
pub fn all_shows() -> Vec<&'static str> {
    award_winning_shows().into_iter().chain(NON_AWARD_SHOWS).collect()
}

/// Draw a synthetic person name.
pub fn random_person(rng: &mut impl RngExt) -> String {
    let f = FIRST_NAMES[rng.random_range(0..FIRST_NAMES.len())];
    let l = LAST_NAMES[rng.random_range(0..LAST_NAMES.len())];
    format!("{f} {l}")
}

/// Draw a synthetic company name (stem + designator).
pub fn random_company(rng: &mut impl RngExt) -> String {
    let stem = COMPANY_STEMS[rng.random_range(0..COMPANY_STEMS.len())];
    let suffix = ["Inc", "Corp", "Ltd", "LLC"][rng.random_range(0..4)];
    format!("{stem} {suffix}")
}

/// Draw a synthetic URL.
pub fn random_url(rng: &mut impl RngExt) -> String {
    let host = URL_HOSTS[rng.random_range(0..URL_HOSTS.len())];
    let path = ["shows", "reviews", "news", "tickets", "schedule"][rng.random_range(0..5)];
    let n = rng.random_range(100..9999);
    format!("http://{host}/{path}/{n}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn table_iv_list_is_exact() {
        assert_eq!(TABLE_IV_SHOWS[0], "The Walking Dead");
        assert_eq!(TABLE_IV_SHOWS[4], "Matilda");
        assert_eq!(TABLE_IV_SHOWS[9], "Never Should Have");
        assert_eq!(TABLE_IV_SHOWS.len(), 10);
    }

    #[test]
    fn pools_are_disjoint_where_required() {
        // Award-winning and non-award pools must not overlap, or the Table IV
        // filter becomes ambiguous.
        for a in award_winning_shows() {
            assert!(!NON_AWARD_SHOWS.contains(&a), "{a} in both pools");
        }
    }

    #[test]
    fn shubert_address_matches_table_vi() {
        let (name, addr) = THEATERS[0];
        assert_eq!(name, "Shubert");
        assert_eq!(addr, "225 W. 44th St between 7th and 8th");
    }

    #[test]
    fn random_draws_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        assert_eq!(random_person(&mut a), random_person(&mut b));
        assert_eq!(random_company(&mut a), random_company(&mut b));
        assert_eq!(random_url(&mut a), random_url(&mut b));
    }

    #[test]
    fn urls_are_lexically_urls() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let u = random_url(&mut rng);
            assert_eq!(datatamer_model::infer::infer_str(&u), datatamer_model::LexicalType::Url);
        }
    }
}
