//! Noise injection: typos, case damage, format variance, nulls.
//!
//! The paper stresses that text-derived data "is usually much dirtier than
//! typical structured data". This module is the dirt model: deterministic,
//! seeded perturbations applied by the generators so that every downstream
//! stage (matching, dedup, cleaning) faces realistic noise with known ground
//! truth.

use rand::RngExt;

/// Apply one random typo: swap adjacent chars, delete a char, duplicate a
/// char, or substitute with a neighbour letter. Strings shorter than 3 chars
/// are returned unchanged (too destructive otherwise).
pub fn typo(rng: &mut impl RngExt, s: &str) -> String {
    let chars: Vec<char> = s.chars().collect();
    if chars.len() < 3 {
        return s.to_owned();
    }
    // Operate away from the first character: leading-char typos are rare in
    // real data and destroy blocking keys.
    let pos = rng.random_range(1..chars.len());
    let mut out = chars.clone();
    match rng.random_range(0..4) {
        0 => {
            // Swap with a neighbour, never touching the first character.
            if pos + 1 < out.len() {
                out.swap(pos, pos + 1);
            } else {
                out.swap(pos - 1, pos);
            }
        }
        1 => {
            out.remove(pos);
        }
        2 => {
            let c = out[pos];
            out.insert(pos, c);
        }
        _ => {
            let sub = neighbour_letter(rng, out[pos]);
            out[pos] = sub;
        }
    }
    out.into_iter().collect()
}

fn neighbour_letter(rng: &mut impl RngExt, c: char) -> char {
    if !c.is_ascii_alphabetic() {
        return c;
    }
    let lower = c.is_ascii_lowercase();
    let alphabet = b"abcdefghijklmnopqrstuvwxyz";
    let idx = (c.to_ascii_lowercase() as u8 - b'a') as usize;
    let delta = if rng.random_bool(0.5) { 1 } else { 25 };
    let sub = alphabet[(idx + delta) % 26] as char;
    if lower {
        sub
    } else {
        sub.to_ascii_uppercase()
    }
}

/// Randomly damage case: all-upper, all-lower, or title-case the string.
pub fn case_damage(rng: &mut impl RngExt, s: &str) -> String {
    match rng.random_range(0..3) {
        0 => s.to_uppercase(),
        1 => s.to_lowercase(),
        _ => s
            .split_whitespace()
            .map(|w| {
                let mut cs = w.chars();
                match cs.next() {
                    Some(f) => f.to_uppercase().collect::<String>() + &cs.as_str().to_lowercase(),
                    None => String::new(),
                }
            })
            .collect::<Vec<_>>()
            .join(" "),
    }
}

/// Render a dollar amount in one of several formats seen in scraped tables.
pub fn money_variant(rng: &mut impl RngExt, amount: f64) -> String {
    match rng.random_range(0..4) {
        0 => format!("${amount:.0}"),
        1 => format!("${amount:.2}"),
        2 => format!("{amount:.0} USD"),
        _ => format!("{amount:.0} dollars"),
    }
}

/// Render a euro amount (the cleaning engine converts these to dollars,
/// the paper's canonical transformation example).
pub fn euro_variant(rng: &mut impl RngExt, amount: f64) -> String {
    match rng.random_range(0..3) {
        0 => format!("€{amount:.0}"),
        1 => format!("{amount:.0} EUR"),
        _ => format!("{amount:.0} euros"),
    }
}

/// Render a date in one of the common formats the inference layer accepts.
pub fn date_variant(rng: &mut impl RngExt, year: u16, month: u8, day: u8) -> String {
    const MONTHS: [&str; 12] = [
        "January", "February", "March", "April", "May", "June", "July", "August",
        "September", "October", "November", "December",
    ];
    match rng.random_range(0..3) {
        0 => format!("{month}/{day}/{year}"),
        1 => format!("{year:04}-{month:02}-{day:02}"),
        _ => format!("{} {day}, {year}", MONTHS[(month - 1) as usize]),
    }
}

/// With probability `p`, return a null-ish cell rendering instead of `s`.
pub fn maybe_null(rng: &mut impl RngExt, p: f64, s: String) -> String {
    if rng.random_bool(p) {
        ["", "N/A", "-", "null"][rng.random_range(0..4)].to_owned()
    } else {
        s
    }
}

/// Perturb an entity name for duplicate generation: a chain of 1–2 dirt ops
/// chosen among typo, case damage, article drop, and whitespace padding.
pub fn perturb_name(rng: &mut impl RngExt, name: &str) -> String {
    let mut out = name.to_owned();
    let ops = rng.random_range(1..=2);
    for _ in 0..ops {
        out = match rng.random_range(0..5) {
            0 => typo(rng, &out),
            1 => case_damage(rng, &out),
            2 => {
                // Drop a leading article.
                let lower = out.to_lowercase();
                if let Some(rest) = lower.strip_prefix("the ") {
                    // Preserve original casing of the remainder.
                    out[out.len() - rest.len()..].to_owned()
                } else {
                    out
                }
            }
            3 => format!(" {out} "),
            _ => {
                // Initialise a first name: "James Smith" -> "J. Smith".
                let mut parts = out.split_whitespace();
                match (parts.next(), parts.next()) {
                    (Some(first), Some(_)) if first.len() > 1 && first.chars().all(char::is_alphabetic) => {
                        let initial = first.chars().next().unwrap();
                        let rest: Vec<&str> = out.split_whitespace().skip(1).collect();
                        format!("{initial}. {}", rest.join(" "))
                    }
                    _ => out,
                }
            }
        };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn typo_changes_longer_strings() {
        let mut r = rng(1);
        let mut changed = 0;
        for _ in 0..50 {
            if typo(&mut r, "Matilda") != "Matilda" {
                changed += 1;
            }
        }
        assert!(changed > 40, "typos should usually change the string: {changed}");
        assert_eq!(typo(&mut r, "ab"), "ab", "short strings untouched");
        assert_eq!(typo(&mut r, ""), "");
    }

    #[test]
    fn typo_preserves_first_char() {
        let mut r = rng(2);
        for _ in 0..100 {
            let t = typo(&mut r, "Shubert");
            assert!(t.starts_with('S'), "{t}");
        }
    }

    #[test]
    fn case_damage_produces_known_forms() {
        let mut r = rng(3);
        for _ in 0..20 {
            let d = case_damage(&mut r, "The Walking Dead");
            assert!(
                d == "THE WALKING DEAD" || d == "the walking dead" || d == "The Walking Dead",
                "{d}"
            );
        }
    }

    #[test]
    fn money_and_euro_variants_parse() {
        let mut r = rng(4);
        for _ in 0..20 {
            let m = money_variant(&mut r, 27.0);
            let parsed = datatamer_model::infer::parse_money(&m).unwrap();
            assert_eq!(parsed.currency, "USD");
            assert!((parsed.amount - 27.0).abs() < 1e-9, "{m}");
            let e = euro_variant(&mut r, 30.0);
            let parsed = datatamer_model::infer::parse_money(&e).unwrap();
            assert_eq!(parsed.currency, "EUR");
        }
    }

    #[test]
    fn date_variants_parse_to_same_date() {
        let mut r = rng(5);
        for _ in 0..20 {
            let d = date_variant(&mut r, 2013, 3, 4);
            let parsed = datatamer_model::infer::parse_date(&d).unwrap();
            assert_eq!((parsed.year, parsed.month, parsed.day), (2013, 3, 4), "{d}");
        }
    }

    #[test]
    fn maybe_null_respects_probability_extremes() {
        let mut r = rng(6);
        assert_eq!(maybe_null(&mut r, 0.0, "x".into()), "x");
        let nulled = maybe_null(&mut r, 1.0, "x".into());
        assert!(["", "N/A", "-", "null"].contains(&nulled.as_str()));
    }

    #[test]
    fn perturb_name_keeps_recognisable_similarity() {
        let mut r = rng(7);
        for _ in 0..50 {
            let p = perturb_name(&mut r, "The Walking Dead");
            let sim = datatamer_sim::jaro_winkler(
                &p.to_lowercase().trim().replace("the ", ""),
                "walking dead",
            );
            assert!(sim > 0.55, "perturbation too destructive: {p} ({sim})");
        }
    }

    #[test]
    fn perturbation_is_deterministic() {
        let mut a = rng(8);
        let mut b = rng(8);
        assert_eq!(perturb_name(&mut a, "Goodfellas"), perturb_name(&mut b, "Goodfellas"));
    }
}
