//! Synthetic datasets standing in for the paper's proprietary data.
//!
//! The paper evaluates on (a) ~1 TB of Recorded Future web text
//! (WEBINSTANCE / WEBENTITIES) and (b) 20 Google Fusion Tables sources about
//! Broadway shows (FTABLES). Neither is publicly available, so this crate
//! generates deterministic synthetic equivalents that exercise the same code
//! paths (DESIGN.md §2 documents the substitution):
//!
//! * [`names`] — name pools: the award-winning shows of Table IV, Broadway
//!   theatres, person/company/city/... pools per Table III's type inventory.
//! * [`webtext`] — seeded fragment generator (news / blog / tweet styles)
//!   whose show-discussion frequencies are Zipf-weighted so the paper's
//!   Table IV top-10 emerges, and whose entity-type mix is calibrated to
//!   Table III's proportions.
//! * [`ftables`] — the 20 heterogeneous Broadway sources (5–20 attributes,
//!   10–100 rows) with synonymous attribute names and format variance,
//!   including the literal Matilda/Shubert row of Table VI.
//! * [`dirt`] — noise injection: typos, case damage, format variance, nulls.
//! * [`truth`] — generator-side ground truth: attribute mappings for schema
//!   matching evaluation and duplicate pair labels for dedup evaluation.

pub mod dirt;
pub mod ftables;
pub mod names;
pub mod truth;
pub mod webtext;

pub use ftables::{FtablesConfig, GeneratedSource};
pub use truth::GroundTruth;
pub use webtext::{WebTextConfig, WebTextCorpus};
