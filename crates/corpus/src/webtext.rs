//! Seeded web-text fragment generator (the Recorded Future stand-in).
//!
//! Every fragment is a short news / blog / tweet-style text discussing one
//! *primary* show plus background entities. Three calibrations tie the
//! output to the paper:
//!
//! 1. **Table IV**: primary shows are drawn Zipf-weighted with the paper's
//!    ten most-discussed award-winning titles at the top ranks, so the
//!    "top-10 most discussed award-winning movies/shows" query reproduces
//!    the paper's list.
//! 2. **Table III**: background entity mentions are drawn from the paper's
//!    entity-type distribution, so the WEBENTITIES per-type histogram lands
//!    on the paper's proportions.
//! 3. **Table V**: one fragment is pinned to the paper's literal Matilda
//!    text feed, so the Matilda demo query returns the paper's TEXT_FEED.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use datatamer_text::{EntityType, Gazetteer};

use crate::names;

/// The paper's verbatim Matilda text feed (Table V / Table VI `TEXT_FEED`).
pub const MATILDA_FEED: &str = "..which began previews on Tuesday, grossed 659,391, \
or...And Matilda an award-winning import from London, grossed 960,998, or 93 percent \
of the maximum.";

/// Style of a generated fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FragmentKind {
    News,
    Blog,
    Tweet,
}

impl FragmentKind {
    /// Label stored in the instance document's `source` field.
    pub fn label(self) -> &'static str {
        match self {
            FragmentKind::News => "news",
            FragmentKind::Blog => "blog",
            FragmentKind::Tweet => "twitter",
        }
    }
}

/// One generated fragment with its generation-time ground truth.
#[derive(Debug, Clone)]
pub struct Fragment {
    /// The text as the "web" serves it.
    pub text: String,
    /// Style.
    pub kind: FragmentKind,
    /// The primary show discussed.
    pub show: String,
    /// Entity mentions the generator embedded: `(type, surface)`.
    pub embedded: Vec<(EntityType, String)>,
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct WebTextConfig {
    /// Number of fragments to generate.
    pub num_fragments: usize,
    /// RNG seed; same seed → identical corpus.
    pub seed: u64,
    /// Zipf exponent for show discussion frequency (higher = steeper).
    pub zipf_exponent: f64,
    /// Mean background entity mentions per fragment.
    pub background_mentions: usize,
    /// Entity-free filler sentences appended per fragment. The paper's
    /// WEBINSTANCE fragments are full web-page excerpts (~27 KB/doc at
    /// 17.7M docs over 242×2 GB extents); padding lets the stats
    /// experiments reproduce that document-size contrast without changing
    /// entity counts.
    pub padding_sentences: usize,
}

impl Default for WebTextConfig {
    fn default() -> Self {
        WebTextConfig {
            num_fragments: 2_000,
            seed: 0xDA7A_7A3E,
            zipf_exponent: 0.7,
            background_mentions: 3,
            padding_sentences: 0,
        }
    }
}

/// The generated corpus plus calibration ground truth.
#[derive(Debug)]
pub struct WebTextCorpus {
    /// All fragments (pinned Matilda feed first).
    pub fragments: Vec<Fragment>,
    /// Gazetteer covering every embedded entity surface, typed.
    pub gazetteer: Gazetteer,
    /// Embedded mention counts per entity type.
    pub type_counts: HashMap<EntityType, u64>,
    /// Fragments-per-show discussion counts.
    pub discussion_counts: HashMap<String, u64>,
}

impl WebTextCorpus {
    /// Generate a corpus.
    pub fn generate(config: &WebTextConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let shows = names::all_shows();
        let zipf = ZipfTable::new(shows.len(), config.zipf_exponent);

        let mut gazetteer = Gazetteer::new();
        let mut type_counts: HashMap<EntityType, u64> = HashMap::new();
        let mut discussion_counts: HashMap<String, u64> = HashMap::new();
        // Seed the gazetteer with every show so primary mentions always parse.
        for s in &shows {
            gazetteer.add(s, EntityType::Movie, 0.95);
        }
        let type_sampler = TypeSampler::from_paper();

        let mut fragments = Vec::with_capacity(config.num_fragments.max(1));
        // Fragment 0: the paper's literal Matilda feed.
        gazetteer.add("London", EntityType::City, 0.9);
        fragments.push(Fragment {
            text: MATILDA_FEED.to_owned(),
            kind: FragmentKind::News,
            show: "Matilda".to_owned(),
            embedded: vec![
                (EntityType::Movie, "Matilda".to_owned()),
                (EntityType::City, "London".to_owned()),
            ],
        });
        *discussion_counts.entry("Matilda".to_owned()).or_insert(0) += 1;
        *type_counts.entry(EntityType::Movie).or_insert(0) += 1;
        *type_counts.entry(EntityType::City).or_insert(0) += 1;

        let award: std::collections::HashSet<&str> =
            crate::names::award_winning_shows().into_iter().collect();
        while fragments.len() < config.num_fragments {
            let show = shows[zipf.sample(&mut rng)];
            let kind = match rng.random_range(0..10) {
                0..=4 => FragmentKind::News,
                5..=7 => FragmentKind::Blog,
                _ => FragmentKind::Tweet,
            };
            let is_award = award.contains(show);
            let mut embedded = vec![(EntityType::Movie, show.to_owned())];
            let mut text = primary_sentence(&mut rng, show, kind, is_award);
            // Background entity sentences.
            let n_bg = rng.random_range(1..=config.background_mentions.max(1) * 2 - 1);
            for _ in 0..n_bg {
                let ty = type_sampler.sample(&mut rng);
                let (sentence, surface) = background_sentence(&mut rng, ty);
                gazetteer.add(&surface, ty, 0.9);
                embedded.push((ty, surface));
                text.push(' ');
                text.push_str(&sentence);
            }
            // Filler choice avoids the RNG so padded and unpadded corpora
            // share the same entity stream for a given seed.
            for k in 0..config.padding_sentences {
                text.push(' ');
                text.push_str(FILLER[(fragments.len() + k) % FILLER.len()]);
            }
            for (ty, _) in &embedded {
                *type_counts.entry(*ty).or_insert(0) += 1;
            }
            *discussion_counts.entry(show.to_owned()).or_insert(0) += 1;
            fragments.push(Fragment { text, kind, show: show.to_owned(), embedded });
        }

        WebTextCorpus { fragments, gazetteer, type_counts, discussion_counts }
    }

    /// Total embedded mentions across fragments.
    pub fn total_mentions(&self) -> u64 {
        self.type_counts.values().sum()
    }
}

fn primary_sentence(rng: &mut StdRng, show: &str, kind: FragmentKind, award: bool) -> String {
    let (theater, _) = names::THEATERS[rng.random_range(0..names::THEATERS.len())];
    let gross = 100_000 + rng.random_range(0..900_000);
    let gross = format!("{},{:03}", gross / 1000, gross % 1000);
    let pct = rng.random_range(55..100);
    let price = rng.random_range(25..150);
    let weekday =
        ["Monday", "Tuesday", "Wednesday", "Thursday", "Friday"][rng.random_range(0..5)];
    // Award-winning titles get the descriptor often enough that the Table IV
    // query can recover awardness from the text itself (the paper's feed
    // says "an award-winning import from London").
    let descriptor = if award && rng.random_bool(0.5) {
        " the award-winning production,"
    } else {
        ""
    };
    match kind {
        FragmentKind::News => {
            // Half the news items use the paper's "began previews" phrasing;
            // the other half avoid it so the organic IndustryTerm rate stays
            // near Table III's share.
            let verb = if rng.random_bool(0.5) { "began previews" } else { "opened" };
            format!(
                "\"{show}\",{descriptor} which {verb} on {weekday}, grossed {gross}, \
                 or {pct} percent of the maximum at the {theater} Theatre."
            )
        }
        FragmentKind::Blog => format!(
            "I finally caught \"{show}\",{descriptor} at the {theater} Theatre last {weekday} \
             and the ticket desk said seats start at ${price}."
        ),
        FragmentKind::Tweet => {
            format!("Just saw {show}!{descriptor} Tickets from ${price}, totally worth it.")
        }
    }
}

fn background_sentence(rng: &mut StdRng, ty: EntityType) -> (String, String) {
    match ty {
        EntityType::Person => {
            let p = names::random_person(rng);
            (format!("{p} said the production exceeded every expectation."), p)
        }
        EntityType::OrgEntity => {
            let last = names::LAST_NAMES[rng.random_range(0..names::LAST_NAMES.len())];
            let kind = ["Group", "Holdings", "Partners", "Ventures"][rng.random_range(0..4)];
            let o = format!("{last} {kind}");
            (format!("Backing came from {o} this season."), o)
        }
        EntityType::GeoEntity => {
            let g = names::GEO_ENTITIES[rng.random_range(0..names::GEO_ENTITIES.len())];
            (format!("Crowds gathered near {g} before curtain."), g.to_owned())
        }
        EntityType::Url => {
            let u = names::random_url(rng);
            (format!("Full schedule at {u} today."), u)
        }
        EntityType::IndustryTerm => {
            let t = names::INDUSTRY_TERMS[rng.random_range(0..names::INDUSTRY_TERMS.len())];
            (format!("Analysts noted the {t} trend continuing."), t.to_owned())
        }
        EntityType::Position => {
            let p = names::POSITIONS[rng.random_range(0..names::POSITIONS.len())];
            (format!("The {p} praised the ensemble warmly."), p.to_owned())
        }
        EntityType::Company => {
            let c = names::random_company(rng);
            (format!("{c} sponsored the gala performance."), c)
        }
        EntityType::Product => {
            let p = names::PRODUCTS[rng.random_range(0..names::PRODUCTS.len())];
            (format!("Fans followed along on their {p} devices."), p.to_owned())
        }
        EntityType::Organization => {
            let o = names::ORGANIZATIONS[rng.random_range(0..names::ORGANIZATIONS.len())];
            (format!("{o} hosted the opening reception."), o.to_owned())
        }
        EntityType::Facility => {
            let f = names::FACILITIES[rng.random_range(0..names::FACILITIES.len())];
            (format!("An afterparty followed at {f}."), f.to_owned())
        }
        EntityType::City => {
            let c = names::CITIES[rng.random_range(0..names::CITIES.len())];
            (format!("The touring company stops in {c} next."), c.to_owned())
        }
        EntityType::MedicalCondition => {
            let m = names::MEDICAL_CONDITIONS[rng.random_range(0..names::MEDICAL_CONDITIONS.len())];
            (format!("The understudy stepped in after a bout of {m}."), m.to_owned())
        }
        EntityType::Technology => {
            let t = names::TECHNOLOGIES[rng.random_range(0..names::TECHNOLOGIES.len())];
            (format!("The staging leans on {t} effects."), t.to_owned())
        }
        EntityType::Movie => {
            let s = names::all_shows();
            let m = s[rng.random_range(0..s.len())];
            (format!("Critics drew comparisons to {m} all week."), m.to_owned())
        }
        EntityType::ProvinceOrState => {
            let p = names::PROVINCES[rng.random_range(0..names::PROVINCES.len())];
            (format!("Bus tours arrived from across {p}."), p.to_owned())
        }
    }
}

/// Entity-free filler sentences (lowercase starts so the parser's
/// capitalised-run heuristics never fire on padding).
const FILLER: [&str; 8] = [
    "the crew rehearsed through the weekend without interruption.",
    "ushers reported steady walk-up interest at the ticket window.",
    "the orchestra tuned for several minutes while the hall filled slowly.",
    "stagehands reset the turntable twice between the afternoon runs.",
    "the lighting desk logged no faults during the evening.",
    "concession lines stretched into the lobby well before the bell.",
    "staff confirmed the balcony opened for the late seating.",
    "programs ran short again and reprints were ordered for the weekend.",
];

/// Precomputed Zipf sampling table over ranks `0..n`.
struct ZipfTable {
    cumulative: Vec<f64>,
}

impl ZipfTable {
    fn new(n: usize, exponent: f64) -> Self {
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(exponent);
            cumulative.push(acc);
        }
        ZipfTable { cumulative }
    }

    fn sample(&self, rng: &mut impl RngExt) -> usize {
        let total = *self.cumulative.last().expect("non-empty table");
        let x = rng.random::<f64>() * total;
        self.cumulative.partition_point(|&c| c < x).min(self.cumulative.len() - 1)
    }
}

/// Samples entity types with the paper's Table III frequencies.
struct TypeSampler {
    cumulative: Vec<(u64, EntityType)>,
    total: u64,
}

impl TypeSampler {
    fn from_paper() -> Self {
        let mut cumulative = Vec::with_capacity(EntityType::ALL.len());
        let mut acc = 0u64;
        for ty in EntityType::ALL {
            acc += ty.paper_count();
            cumulative.push((acc, ty));
        }
        TypeSampler { cumulative, total: acc }
    }

    fn sample(&self, rng: &mut impl RngExt) -> EntityType {
        let x = rng.random_range(0..self.total);
        let idx = self.cumulative.partition_point(|(c, _)| *c <= x);
        self.cumulative[idx.min(self.cumulative.len() - 1)].1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus(n: usize, seed: u64) -> WebTextCorpus {
        WebTextCorpus::generate(&WebTextConfig {
            num_fragments: n,
            seed,
            ..Default::default()
        })
    }

    #[test]
    fn deterministic_per_seed() {
        let a = corpus(50, 7);
        let b = corpus(50, 7);
        assert_eq!(a.fragments.len(), b.fragments.len());
        for (x, y) in a.fragments.iter().zip(&b.fragments) {
            assert_eq!(x.text, y.text);
        }
        let c = corpus(50, 8);
        assert_ne!(a.fragments[5].text, c.fragments[5].text);
    }

    #[test]
    fn matilda_feed_is_pinned_first() {
        let c = corpus(10, 1);
        assert_eq!(c.fragments[0].text, MATILDA_FEED);
        assert_eq!(c.fragments[0].show, "Matilda");
    }

    #[test]
    fn discussion_counts_match_fragments() {
        let c = corpus(300, 2);
        let total: u64 = c.discussion_counts.values().sum();
        assert_eq!(total, 300);
        assert_eq!(c.fragments.len(), 300);
    }

    #[test]
    fn zipf_puts_table_iv_shows_on_top() {
        let c = corpus(5_000, 42);
        let mut by_count: Vec<(&String, &u64)> = c.discussion_counts.iter().collect();
        by_count.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
        let top10: Vec<&str> = by_count.iter().take(10).map(|(s, _)| s.as_str()).collect();
        // All of the paper's ten should dominate the discussion ranking.
        let hits = names::TABLE_IV_SHOWS.iter().filter(|s| top10.contains(*s)).count();
        assert!(hits >= 9, "Table IV shows in generated top10: {hits} ({top10:?})");
        assert_eq!(top10[0], "The Walking Dead");
    }

    #[test]
    fn type_mix_tracks_table_iii_proportions() {
        let c = corpus(4_000, 11);
        let total = c.total_mentions() as f64;
        let persons = *c.type_counts.get(&EntityType::Person).unwrap_or(&0) as f64;
        let movies = *c.type_counts.get(&EntityType::Movie).unwrap_or(&0) as f64;
        // Person is the most common background type in the paper (~26%);
        // Movie is inflated here because every fragment has a primary show.
        assert!(persons / total > 0.10, "person share too low: {}", persons / total);
        assert!(movies > 0.0);
        let states = *c.type_counts.get(&EntityType::ProvinceOrState).unwrap_or(&0) as f64;
        assert!(
            states < persons,
            "rare types must stay rarer than common ones"
        );
    }

    #[test]
    fn gazetteer_covers_embedded_entities() {
        let c = corpus(200, 3);
        for f in &c.fragments {
            let found = c.gazetteer.find(&f.text);
            for (ty, surface) in &f.embedded {
                if *ty == EntityType::Url {
                    // URLs are scanner territory, not gazetteer entries.
                    continue;
                }
                // Ambiguous surfaces ("Chicago" the show vs. the city) may
                // resolve to a different type — surface recall is what the
                // gazetteer guarantees.
                assert!(
                    found.iter().any(|m| m.text.eq_ignore_ascii_case(surface)),
                    "embedded ({ty:?}, {surface}) not found in: {}",
                    f.text
                );
            }
        }
    }

    #[test]
    fn fragment_kinds_all_appear() {
        let c = corpus(300, 4);
        let news = c.fragments.iter().filter(|f| f.kind == FragmentKind::News).count();
        let blog = c.fragments.iter().filter(|f| f.kind == FragmentKind::Blog).count();
        let tweet = c.fragments.iter().filter(|f| f.kind == FragmentKind::Tweet).count();
        assert!(news > 0 && blog > 0 && tweet > 0);
        assert_eq!(news + blog + tweet, 300);
        assert_eq!(FragmentKind::Tweet.label(), "twitter");
    }

    #[test]
    fn padding_grows_fragments_without_new_entities() {
        let base = WebTextConfig { num_fragments: 50, seed: 5, ..Default::default() };
        let padded = WebTextConfig { padding_sentences: 6, ..base.clone() };
        let a = WebTextCorpus::generate(&base);
        let b = WebTextCorpus::generate(&padded);
        let mean = |c: &WebTextCorpus| {
            c.fragments.iter().map(|f| f.text.len()).sum::<usize>() as f64
                / c.fragments.len() as f64
        };
        assert!(mean(&b) > mean(&a) * 2.0, "{} vs {}", mean(&a), mean(&b));
        assert_eq!(a.total_mentions(), b.total_mentions(), "padding adds no entities");
    }

    #[test]
    fn zipf_table_is_monotone_and_in_range() {
        let t = ZipfTable::new(5, 1.0);
        let mut rng = StdRng::seed_from_u64(0);
        let mut seen = [0usize; 5];
        for _ in 0..1000 {
            let s = t.sample(&mut rng);
            assert!(s < 5);
            seen[s] += 1;
        }
        assert!(seen[0] > seen[4], "rank 0 must dominate rank 4: {seen:?}");
    }
}
