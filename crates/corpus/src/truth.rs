//! Generator-side ground truth for evaluation.
//!
//! Two label sets drive the paper's quantitative claims:
//!
//! * **Schema matching** (Figs 2–3): which source attribute maps to which
//!   global attribute — captured by [`GroundTruth::attr_mappings`].
//! * **Dedup classification** (§IV: 89/90% precision/recall by 10-fold
//!   cross-validation "on several different types of entities") — labelled
//!   entity-name pairs per [`datatamer_text::EntityType`], produced by
//!   [`labeled_pairs`]. Positives are dirt-perturbed duplicates; negatives
//!   mix easy (random) and hard (shared-token) non-duplicates, which is what
//!   keeps the ceiling below 100% and in the paper's band.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use datatamer_text::EntityType;

use crate::dirt;
use crate::ftables::GeneratedSource;
use crate::names;

/// Aggregated ground truth across generated datasets.
#[derive(Debug, Default)]
pub struct GroundTruth {
    /// `(source_name, source_attr)` → canonical global attribute.
    pub attr_mappings: HashMap<(String, String), &'static str>,
}

impl GroundTruth {
    /// Collect mappings from generated FTABLES sources.
    pub fn from_sources(sources: &[GeneratedSource]) -> Self {
        let mut attr_mappings = HashMap::new();
        for s in sources {
            for (attr, canonical) in &s.mapping {
                attr_mappings.insert((s.name.clone(), attr.clone()), *canonical);
            }
        }
        GroundTruth { attr_mappings }
    }

    /// Canonical attribute for a source attribute, when known.
    pub fn canonical_of(&self, source: &str, attr: &str) -> Option<&'static str> {
        self.attr_mappings.get(&(source.to_owned(), attr.to_owned())).copied()
    }
}

/// A labelled entity pair for dedup training/evaluation.
#[derive(Debug, Clone)]
pub struct LabeledPair {
    /// First surface form.
    pub a: String,
    /// Second surface form.
    pub b: String,
    /// True when both refer to the same entity.
    pub same: bool,
    /// The entity type both names belong to.
    pub entity_type: EntityType,
}

/// Draw a base name of the given type.
fn base_name(rng: &mut StdRng, ty: EntityType) -> String {
    match ty {
        EntityType::Person => names::random_person(rng),
        EntityType::Company => names::random_company(rng),
        EntityType::Movie => {
            let s = names::all_shows();
            s[rng.random_range(0..s.len())].to_owned()
        }
        EntityType::City => names::CITIES[rng.random_range(0..names::CITIES.len())].to_owned(),
        EntityType::GeoEntity => {
            names::GEO_ENTITIES[rng.random_range(0..names::GEO_ENTITIES.len())].to_owned()
        }
        EntityType::Product => {
            names::PRODUCTS[rng.random_range(0..names::PRODUCTS.len())].to_owned()
        }
        EntityType::Organization => {
            names::ORGANIZATIONS[rng.random_range(0..names::ORGANIZATIONS.len())].to_owned()
        }
        EntityType::Facility => {
            names::FACILITIES[rng.random_range(0..names::FACILITIES.len())].to_owned()
        }
        _ => {
            // Fall back to person-shaped names for remaining types.
            names::random_person(rng)
        }
    }
}

/// A hard negative: different entity whose name shares structure with `a`.
fn hard_negative(rng: &mut StdRng, ty: EntityType, a: &str) -> String {
    match ty {
        EntityType::Person => {
            // Share the last name, vary the first.
            let last = a.split_whitespace().last().unwrap_or("Smith");
            let first = names::FIRST_NAMES[rng.random_range(0..names::FIRST_NAMES.len())];
            format!("{first} {last}")
        }
        EntityType::Company => {
            // Share the designator, vary the stem.
            let suffix = a.split_whitespace().last().unwrap_or("Inc");
            let stem = names::COMPANY_STEMS[rng.random_range(0..names::COMPANY_STEMS.len())];
            format!("{stem} {suffix}")
        }
        _ => {
            // Another member of the same pool.
            let mut b = base_name(rng, ty);
            for _ in 0..8 {
                if b != a {
                    break;
                }
                b = base_name(rng, ty);
            }
            b
        }
    }
}

/// Difficulty knobs for pair generation.
///
/// The two ambiguity rates model what makes web-scale dedup *irreducibly*
/// imperfect (and what keeps the paper's result at 89/90% rather than 100%):
///
/// * **aliases** — the same real-world entity under an unrelated surface
///   form (stage names, married names, rebrands). Undetectable from the
///   strings alone; every alias positive costs recall.
/// * **doppelgangers** — distinct real-world entities with near-identical
///   names (two different "James Smith"s). Indistinguishable from dirty
///   duplicates; every doppelganger negative accepted costs precision.
#[derive(Debug, Clone, Copy)]
pub struct PairDifficulty {
    /// Share of negatives drawn adversarially (shared structure).
    pub hard_negative_rate: f64,
    /// Apply a second perturbation pass to positives.
    pub extra_dirt: bool,
    /// Share of positives that are aliases (unrelated surface form).
    pub alias_rate: f64,
    /// Share of negatives that are doppelgangers (perturbation-close name
    /// of a different entity).
    pub doppelganger_rate: f64,
}

impl PairDifficulty {
    /// No ambiguity: every pair is decidable from the strings.
    pub fn separable(hard_negative_rate: f64, extra_dirt: bool) -> Self {
        PairDifficulty { hard_negative_rate, extra_dirt, alias_rate: 0.0, doppelganger_rate: 0.0 }
    }

    /// Calibrated to the paper's §IV band (89/90% precision/recall):
    /// ~10% alias positives and ~11% doppelganger negatives.
    pub fn paper_band() -> Self {
        PairDifficulty {
            hard_negative_rate: 0.6,
            extra_dirt: false,
            alias_rate: 0.10,
            doppelganger_rate: 0.11,
        }
    }
}

/// Generate `n` labelled pairs (≈ balanced) for one entity type.
///
/// `hard_negative_rate` controls the share of negatives drawn adversarially;
/// `extra_dirt` applies a second perturbation pass to positives, pushing
/// difficulty up (used to show classifier degradation in ablations).
pub fn labeled_pairs(
    ty: EntityType,
    n: usize,
    seed: u64,
    hard_negative_rate: f64,
    extra_dirt: bool,
) -> Vec<LabeledPair> {
    labeled_pairs_with(ty, n, seed, PairDifficulty::separable(hard_negative_rate, extra_dirt))
}

/// Generate labelled pairs under explicit difficulty (see [`PairDifficulty`]).
pub fn labeled_pairs_with(
    ty: EntityType,
    n: usize,
    seed: u64,
    difficulty: PairDifficulty,
) -> Vec<LabeledPair> {
    let mut rng = StdRng::seed_from_u64(seed ^ (ty as u64).wrapping_mul(0x9e37_79b9));
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let a = base_name(&mut rng, ty);
        if i % 2 == 0 {
            // Positive: alias (unrelated surface) or perturbed duplicate.
            let b = if rng.random_bool(difficulty.alias_rate) {
                let mut b = base_name(&mut rng, ty);
                for _ in 0..8 {
                    if b != a {
                        break;
                    }
                    b = base_name(&mut rng, ty);
                }
                b
            } else {
                let mut b = dirt::perturb_name(&mut rng, &a);
                if difficulty.extra_dirt {
                    b = dirt::perturb_name(&mut rng, &b);
                }
                b
            };
            out.push(LabeledPair { a, b, same: true, entity_type: ty });
        } else {
            // Negative: doppelganger, hard negative, or random other entity.
            let b = if rng.random_bool(difficulty.doppelganger_rate) {
                dirt::perturb_name(&mut rng, &a)
            } else if rng.random_bool(difficulty.hard_negative_rate) {
                hard_negative(&mut rng, ty, &a)
            } else {
                let mut b = base_name(&mut rng, ty);
                for _ in 0..8 {
                    if b != a {
                        break;
                    }
                    b = base_name(&mut rng, ty);
                }
                b
            };
            // A generated negative can collide exactly with a: relabel.
            let same = b == a;
            out.push(LabeledPair { a, b, same, entity_type: ty });
        }
    }
    out
}

/// The entity types the paper's §IV evaluates ("several different types of
/// entities from the web-text dataset").
pub const DEDUP_EVAL_TYPES: [EntityType; 5] = [
    EntityType::Person,
    EntityType::Company,
    EntityType::Movie,
    EntityType::City,
    EntityType::Organization,
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ftables::{self, FtablesConfig};

    #[test]
    fn ground_truth_from_sources_lookup() {
        let sources = ftables::generate(&FtablesConfig::default(), 0);
        let gt = GroundTruth::from_sources(&sources);
        // Source 0 uses clean spellings.
        assert_eq!(gt.canonical_of("ftable_00", "show_name"), Some(ftables::canon::SHOW_NAME));
        assert_eq!(gt.canonical_of("ftable_00", "nonexistent"), None);
        assert!(!gt.attr_mappings.is_empty());
    }

    #[test]
    fn pairs_are_balanced_and_typed() {
        let pairs = labeled_pairs(EntityType::Person, 400, 1, 0.5, false);
        assert_eq!(pairs.len(), 400);
        let pos = pairs.iter().filter(|p| p.same).count();
        assert!((190..=210).contains(&pos), "roughly balanced: {pos}");
        assert!(pairs.iter().all(|p| p.entity_type == EntityType::Person));
    }

    #[test]
    fn positives_are_similar_negatives_distinct() {
        // Compare on canonical forms: perturbation legitimately drops
        // articles, so raw Jaro-Winkler under-measures positives.
        let canon = |s: &str| {
            let lower = s.trim().to_lowercase();
            lower.strip_prefix("the ").map(str::to_owned).unwrap_or(lower)
        };
        let pairs = labeled_pairs(EntityType::Movie, 200, 2, 0.5, false);
        for p in &pairs {
            if p.same {
                // Typos may hit the article itself ("The"→"Tge"), so take
                // the better of canonical and raw comparisons.
                let sim = datatamer_sim::jaro_winkler(&canon(&p.a), &canon(&p.b)).max(
                    datatamer_sim::jaro_winkler(&p.a.to_lowercase(), &p.b.to_lowercase()),
                );
                assert!(sim > 0.4, "positive too dissimilar: {} / {} ({sim})", p.a, p.b);
            } else {
                assert_ne!(p.a, p.b);
            }
        }
    }

    #[test]
    fn hard_negatives_share_structure() {
        let pairs = labeled_pairs(EntityType::Person, 600, 3, 1.0, false);
        let mut shared_last = 0;
        let mut negs = 0;
        for p in pairs.iter().filter(|p| !p.same) {
            negs += 1;
            let la = p.a.split_whitespace().last();
            let lb = p.b.split_whitespace().last();
            if la == lb {
                shared_last += 1;
            }
        }
        assert!(
            shared_last as f64 / negs as f64 > 0.8,
            "hard person negatives share last names: {shared_last}/{negs}"
        );
    }

    #[test]
    fn deterministic_and_type_salted() {
        let a = labeled_pairs(EntityType::Person, 50, 9, 0.5, false);
        let b = labeled_pairs(EntityType::Person, 50, 9, 0.5, false);
        assert_eq!(a[7].a, b[7].a);
        let c = labeled_pairs(EntityType::Company, 50, 9, 0.5, false);
        assert_ne!(a[7].a, c[7].a, "different types draw different names");
    }

    #[test]
    fn extra_dirt_reduces_similarity() {
        let clean = labeled_pairs(EntityType::Movie, 400, 4, 0.5, false);
        let dirty = labeled_pairs(EntityType::Movie, 400, 4, 0.5, true);
        let avg = |ps: &[LabeledPair]| {
            let sims: Vec<f64> = ps
                .iter()
                .filter(|p| p.same)
                .map(|p| datatamer_sim::jaro_winkler(&p.a.to_lowercase(), &p.b.to_lowercase()))
                .collect();
            sims.iter().sum::<f64>() / sims.len() as f64
        };
        assert!(avg(&clean) > avg(&dirty), "extra dirt must lower positive similarity");
    }
}
