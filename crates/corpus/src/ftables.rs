//! The FTABLES generator: 20 heterogeneous Broadway-show sources.
//!
//! The paper: "we used 20 structured data sources found using Google Fusion
//! Tables having Broadway shows schedules, theater locations, and discounts.
//! The structured sources on average have 5-20 different attributes and
//! 10-100 rows." Source 0 is pinned to carry the literal Matilda row of
//! Table VI so the fused demo query returns the paper's exact values.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use datatamer_model::{Record, RecordId, SourceId, Value};

use crate::dirt;
use crate::names;

/// Canonical (global-schema) attribute names, in the spelling the paper's
/// Table VI uses.
pub mod canon {
    pub const SHOW_NAME: &str = "SHOW_NAME";
    pub const THEATER: &str = "THEATER";
    pub const PERFORMANCE: &str = "PERFORMANCE";
    pub const CHEAPEST_PRICE: &str = "CHEAPEST_PRICE";
    pub const FIRST: &str = "FIRST";
    pub const DISCOUNT: &str = "DISCOUNT";
    pub const CITY: &str = "CITY";
    pub const RUNTIME: &str = "RUNTIME";
    pub const RATING: &str = "RATING";
    pub const CAPACITY: &str = "CAPACITY";
    pub const PHONE: &str = "PHONE";
    pub const WEBSITE: &str = "WEBSITE";
}

/// Synonymous source-side spellings per canonical attribute. The first
/// spelling is the "clean" one; generators draw uniformly.
pub fn synonyms(canonical: &str) -> &'static [&'static str] {
    match canonical {
        canon::SHOW_NAME => &["show_name", "show", "title", "production", "name"],
        canon::THEATER => &["theater", "theatre", "venue", "location", "house"],
        canon::PERFORMANCE => &["performance", "schedule", "showtimes", "times", "curtain"],
        canon::CHEAPEST_PRICE => &["cheapest_price", "price", "ticket_price", "cost", "from_price"],
        canon::FIRST => &["first", "opening", "first_performance", "premiere", "opening_date"],
        canon::DISCOUNT => &["discount", "deal", "savings", "promo"],
        canon::CITY => &["city", "market", "town"],
        canon::RUNTIME => &["runtime", "duration", "length_minutes"],
        canon::RATING => &["rating", "stars", "score"],
        canon::CAPACITY => &["capacity", "seats", "seating"],
        canon::PHONE => &["phone", "box_office_phone", "telephone"],
        canon::WEBSITE => &["website", "url", "link"],
        _ => &[],
    }
}

/// All canonical attributes the generator can emit (order matters: the
/// first three are near-mandatory, matching "schedules, theater locations,
/// and discounts").
pub const CANONICAL_ATTRS: [&str; 12] = [
    canon::SHOW_NAME,
    canon::THEATER,
    canon::CHEAPEST_PRICE,
    canon::PERFORMANCE,
    canon::FIRST,
    canon::DISCOUNT,
    canon::CITY,
    canon::RUNTIME,
    canon::RATING,
    canon::CAPACITY,
    canon::PHONE,
    canon::WEBSITE,
];

/// The Table VI Matilda row, verbatim.
pub const MATILDA_THEATER: &str = "Shubert 225 W. 44th St between 7th and 8th";
pub const MATILDA_PERFORMANCE: &str =
    "Tues at 7pm Wed at 8pm Thurs at 7pm Fri-Sat at 8pm Wed, Sat at 2pm Sun at 3pm";
pub const MATILDA_PRICE: &str = "$27";
pub const MATILDA_FIRST: &str = "3/4/2013";

/// One generated structured source with its ground-truth mapping.
#[derive(Debug, Clone)]
pub struct GeneratedSource {
    /// Source id (stable across a generation run).
    pub id: SourceId,
    /// Human-readable name, e.g. `ftable_03`.
    pub name: String,
    /// The records.
    pub records: Vec<Record>,
    /// Ground truth: source attribute name → canonical attribute.
    pub mapping: HashMap<String, &'static str>,
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct FtablesConfig {
    /// Number of sources (the paper used 20).
    pub num_sources: usize,
    /// RNG seed.
    pub seed: u64,
    /// Probability a cell is nulled out.
    pub null_rate: f64,
    /// Probability a string cell receives a typo.
    pub typo_rate: f64,
    /// Probability a price renders in euros (exercises the EUR→USD
    /// transformation, the paper's canonical cleaning example).
    pub euro_rate: f64,
}

impl Default for FtablesConfig {
    fn default() -> Self {
        FtablesConfig {
            num_sources: 20,
            seed: 0x0F7A_B1E5,
            null_rate: 0.05,
            typo_rate: 0.08,
            euro_rate: 0.15,
        }
    }
}

/// Generate the FTABLES sources. `SourceId`s start at `base_source_id`.
pub fn generate(config: &FtablesConfig, base_source_id: u32) -> Vec<GeneratedSource> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let shows = names::all_shows();
    (0..config.num_sources)
        .map(|i| {
            let id = SourceId(base_source_id + i as u32);
            let name = format!("ftable_{i:02}");
            // Attribute selection: SHOW_NAME always; THEATER and PRICE almost
            // always; 5–12 attributes total (the paper: 5–20).
            let mut attrs: Vec<&'static str> = vec![canon::SHOW_NAME];
            if rng.random_bool(0.9) {
                attrs.push(canon::THEATER);
            }
            if rng.random_bool(0.9) {
                attrs.push(canon::CHEAPEST_PRICE);
            }
            for extra in &CANONICAL_ATTRS[3..] {
                if rng.random_bool(0.55) {
                    attrs.push(extra);
                }
            }
            // Source 0 must carry the full Table VI attribute set.
            if i == 0 {
                for must in [canon::THEATER, canon::CHEAPEST_PRICE, canon::PERFORMANCE, canon::FIRST] {
                    if !attrs.contains(&must) {
                        attrs.push(must);
                    }
                }
            }
            // Pick a synonym spelling per attribute.
            let mut mapping = HashMap::new();
            let mut spelling: Vec<(String, &'static str)> = Vec::with_capacity(attrs.len());
            for canonical in &attrs {
                let pool = synonyms(canonical);
                let pick = if i == 0 {
                    // Clean spellings in the seed source keep the global
                    // schema's bootstrap names readable.
                    pool[0]
                } else {
                    pool[rng.random_range(0..pool.len())]
                };
                mapping.insert(pick.to_owned(), *canonical);
                spelling.push((pick.to_owned(), canonical));
            }

            let num_rows = rng.random_range(10..=100);
            let mut records = Vec::with_capacity(num_rows);
            for row in 0..num_rows {
                let show = shows[rng.random_range(0..shows.len())];
                let rec = generate_row(
                    &mut rng, config, id,
                    RecordId(row as u64),
                    show, &spelling,
                );
                records.push(rec);
            }
            // Pin the Matilda row into source 0 (replacing row 0).
            if i == 0 {
                records[0] = matilda_row(id, &spelling);
            }
            GeneratedSource { id, name, records, mapping }
        })
        .collect()
}

fn generate_row(
    rng: &mut StdRng,
    config: &FtablesConfig,
    source: SourceId,
    id: RecordId,
    show: &str,
    spelling: &[(String, &'static str)],
) -> Record {
    let (theater, addr) = names::THEATERS[rng.random_range(0..names::THEATERS.len())];
    let mut rec = Record::new(source, id);
    for (attr_name, canonical) in spelling {
        let raw = match *canonical {
            canon::SHOW_NAME => {
                let mut s = show.to_owned();
                if rng.random_bool(config.typo_rate) {
                    s = dirt::typo(rng, &s);
                }
                if rng.random_bool(0.15) {
                    s = dirt::case_damage(rng, &s);
                }
                s
            }
            canon::THEATER => format!("{theater} {addr}"),
            canon::CHEAPEST_PRICE => {
                // Floor of 30: keeps the pinned Matilda "$27" (Table VI) the
                // global minimum so NumericMin fusion reproduces the paper.
                let amount = rng.random_range(30..160) as f64;
                if rng.random_bool(config.euro_rate) {
                    dirt::euro_variant(rng, amount)
                } else {
                    dirt::money_variant(rng, amount)
                }
            }
            canon::PERFORMANCE => random_schedule(rng),
            canon::FIRST => {
                let month = rng.random_range(1..=12u8);
                let day = rng.random_range(1..=28u8);
                dirt::date_variant(rng, 2013, month, day)
            }
            canon::DISCOUNT => format!("{}%", rng.random_range(10..60)),
            canon::CITY => names::CITIES[rng.random_range(0..names::CITIES.len())].to_owned(),
            canon::RUNTIME => format!("{} min", rng.random_range(80..200)),
            canon::RATING => format!("{:.1}", 2.0 + rng.random::<f64>() * 3.0),
            canon::CAPACITY => rng.random_range(400..1900).to_string(),
            canon::PHONE => format!(
                "(212) 555-{:04}",
                rng.random_range(0..10_000)
            ),
            canon::WEBSITE => names::random_url(rng),
            _ => unreachable!("unknown canonical attribute"),
        };
        let cell = dirt::maybe_null(rng, config.null_rate, raw);
        rec.set(attr_name.clone(), Value::Str(cell));
    }
    rec
}

fn random_schedule(rng: &mut StdRng) -> String {
    const DAYS: [&str; 7] = ["Mon", "Tues", "Wed", "Thurs", "Fri", "Sat", "Sun"];
    let n = rng.random_range(2..=4);
    let mut parts = Vec::with_capacity(n);
    for _ in 0..n {
        let d = DAYS[rng.random_range(0..7)];
        let h = rng.random_range(1..=9);
        parts.push(format!("{d} at {h}pm"));
    }
    parts.join(" ")
}

fn matilda_row(source: SourceId, spelling: &[(String, &'static str)]) -> Record {
    let mut rec = Record::new(source, RecordId(0));
    for (attr_name, canonical) in spelling {
        let cell: String = match *canonical {
            canon::SHOW_NAME => "Matilda".into(),
            canon::THEATER => MATILDA_THEATER.into(),
            canon::PERFORMANCE => MATILDA_PERFORMANCE.into(),
            canon::CHEAPEST_PRICE => MATILDA_PRICE.into(),
            canon::FIRST => MATILDA_FIRST.into(),
            canon::DISCOUNT => "25%".into(),
            canon::CITY => "New York".into(),
            canon::RUNTIME => "160 min".into(),
            canon::RATING => "4.8".into(),
            canon::CAPACITY => "1460".into(),
            canon::PHONE => "(212) 555-0044".into(),
            canon::WEBSITE => "http://playbill.com/shows/matilda".into(),
            _ => unreachable!(),
        };
        rec.set(attr_name.clone(), Value::Str(cell));
    }
    rec
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen() -> Vec<GeneratedSource> {
        generate(&FtablesConfig::default(), 100)
    }

    #[test]
    fn twenty_sources_with_paper_cardinalities() {
        let sources = gen();
        assert_eq!(sources.len(), 20);
        for s in &sources {
            assert!(
                (10..=100).contains(&s.records.len()),
                "{} has {} rows",
                s.name,
                s.records.len()
            );
            let arity = s.records[0].len();
            assert!((3..=20).contains(&arity), "{} arity {arity}", s.name);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = gen();
        let b = gen();
        assert_eq!(a[3].records[5], b[3].records[5]);
        let c = generate(&FtablesConfig { seed: 99, ..Default::default() }, 100);
        assert_ne!(a[3].records[5], c[3].records[5]);
    }

    #[test]
    fn source_zero_carries_table_vi_matilda() {
        let sources = gen();
        let s0 = &sources[0];
        let matilda = &s0.records[0];
        assert_eq!(matilda.get_text("show_name").as_deref(), Some("Matilda"));
        assert_eq!(matilda.get_text("theater").as_deref(), Some(MATILDA_THEATER));
        assert_eq!(matilda.get_text("performance").as_deref(), Some(MATILDA_PERFORMANCE));
        assert_eq!(matilda.get_text("cheapest_price").as_deref(), Some(MATILDA_PRICE));
        assert_eq!(matilda.get_text("first").as_deref(), Some(MATILDA_FIRST));
    }

    #[test]
    fn mapping_covers_every_attribute() {
        for s in gen() {
            for rec in &s.records {
                for name in rec.field_names() {
                    assert!(
                        s.mapping.contains_key(name),
                        "{}: attribute {name} missing from ground truth",
                        s.name
                    );
                }
            }
        }
    }

    #[test]
    fn spellings_vary_across_sources() {
        let sources = gen();
        let mut show_spellings: std::collections::HashSet<&str> = Default::default();
        for s in &sources {
            for (attr, canonical) in &s.mapping {
                if *canonical == canon::SHOW_NAME {
                    show_spellings.insert(attr);
                }
            }
        }
        assert!(
            show_spellings.len() >= 3,
            "schema heterogeneity required: {show_spellings:?}"
        );
    }

    #[test]
    fn prices_include_euros_for_transformation() {
        let sources = gen();
        let mut euros = 0;
        let mut dollars = 0;
        for s in &sources {
            for r in &s.records {
                for (name, v) in r.iter() {
                    if s.mapping.get(name) == Some(&canon::CHEAPEST_PRICE) {
                        if let Some(m) = datatamer_model::infer::parse_money(&v.to_text()) {
                            match m.currency {
                                "EUR" => euros += 1,
                                "USD" => dollars += 1,
                                _ => {}
                            }
                        }
                    }
                }
            }
        }
        assert!(euros > 10, "need euro prices to exercise the transform: {euros}");
        assert!(dollars > euros, "dollars should dominate");
    }

    #[test]
    fn synonym_table_consistency() {
        for canonical in CANONICAL_ATTRS {
            let pool = synonyms(canonical);
            assert!(!pool.is_empty(), "{canonical} has no spellings");
        }
        assert!(synonyms("NOPE").is_empty());
    }
}
