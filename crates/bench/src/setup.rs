//! Scaled system construction shared by the table printers and benches.

use datatamer_core::config::StorageConfig;
use datatamer_core::fusion::GroupingStrategy;
use datatamer_core::{DataTamer, DataTamerConfig};
use datatamer_corpus::ftables::{self, FtablesConfig, GeneratedSource};
use datatamer_corpus::webtext::{WebTextConfig, WebTextCorpus};
use datatamer_text::DomainParser;

/// Paper-side constants for scaling.
pub mod paper {
    /// Table I: WEBINSTANCE entry count.
    pub const INSTANCE_COUNT: u64 = 17_731_744;
    /// Table I: WEBINSTANCE extent count.
    pub const INSTANCE_EXTENTS: usize = 242;
    /// Table I: WEBINSTANCE index count.
    pub const INSTANCE_NINDEXES: usize = 1;
    /// Table I: last extent size (bytes).
    pub const INSTANCE_LAST_EXTENT: usize = 1_903_786_752;
    /// Table I: total index size (bytes).
    pub const INSTANCE_INDEX_SIZE: usize = 733_651_904;
    /// Table II: WEBENTITIES entry count.
    pub const ENTITY_COUNT: u64 = 173_451_529;
    /// Table II: WEBENTITIES extent count.
    pub const ENTITY_EXTENTS: usize = 56;
    /// Table II: WEBENTITIES index count.
    pub const ENTITY_NINDEXES: usize = 8;
    /// Table II: last extent size (bytes).
    pub const ENTITY_LAST_EXTENT: usize = 2_042_834_432;
    /// Table II: total index size (bytes).
    pub const ENTITY_INDEX_SIZE: usize = 59_123_168_800;
}

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Fraction of the paper's data volume (default 1/5000 — a few
    /// thousand fragments, seconds to build).
    pub scale: f64,
    /// Seed for every generator.
    pub seed: u64,
    /// Background mentions per fragment (the paper averages ~9.8 entities
    /// per instance: 173.4M / 17.7M).
    pub background_mentions: usize,
    /// Padding sentences per fragment (pushes instance docs toward the
    /// paper's large web-page excerpts).
    pub padding_sentences: usize,
    /// How the consolidation stage groups records (`CanonicalName` keeps
    /// the classic scan; `BlockedEr` routes fusion through blocking +
    /// prepared pair scoring — the hot path the `pair_scoring/*` bench
    /// group measures in isolation).
    pub grouping: GroupingStrategy,
    /// Storage substrate for every collection the system creates: backend
    /// (memory vs out-of-core file), shard routing, and the extent-cache
    /// byte budget for file-backed shards. The default (memory, round
    /// robin) keeps the classic in-process cells; the `pipeline_end_to_end`
    /// file cells point this at a temp directory.
    pub storage: StorageConfig,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            scale: 1.0 / 5000.0,
            seed: 0xDA7A,
            background_mentions: 9,
            // ~24 filler sentences push instance documents to several KB,
            // reproducing the paper's instance-vs-entity size contrast
            // (WEBINSTANCE at 242 extents vs WEBENTITIES at 56 despite 10×
            // fewer documents).
            padding_sentences: 24,
            grouping: GroupingStrategy::CanonicalName,
            storage: StorageConfig::default(),
        }
    }
}

impl HarnessConfig {
    /// Number of fragments at this scale.
    pub fn num_fragments(&self) -> usize {
        ((paper::INSTANCE_COUNT as f64) * self.scale).round().max(50.0) as usize
    }

    /// Extent size at this scale (paper: 2 GB).
    pub fn extent_size(&self) -> usize {
        ((2.0_f64 * 1024.0 * 1024.0 * 1024.0) * self.scale).max(64.0 * 1024.0) as usize
    }

    /// The web-text generator configuration at this scale.
    pub fn webtext_config(&self) -> WebTextConfig {
        WebTextConfig {
            num_fragments: self.num_fragments(),
            seed: self.seed,
            zipf_exponent: 0.7,
            background_mentions: self.background_mentions,
            padding_sentences: self.padding_sentences,
        }
    }
}

/// A fully-built system: corpus + sources + loaded Data Tamer instance.
pub struct ScaledSystem {
    /// The harness configuration used.
    pub config: HarnessConfig,
    /// The synthetic web-text corpus.
    pub corpus: WebTextCorpus,
    /// The 20 FTABLES sources.
    pub sources: Vec<GeneratedSource>,
    /// Data Tamer with everything registered, ingested, and integrated.
    pub dt: DataTamer,
}

impl ScaledSystem {
    /// Build the full system: generate datasets, register all 20 structured
    /// sources, ingest the web text.
    pub fn build(config: HarnessConfig) -> Self {
        let corpus = WebTextCorpus::generate(&config.webtext_config());
        let sources = ftables::generate(
            &FtablesConfig { seed: config.seed ^ 0xF7AB, ..Default::default() },
            1000,
        );
        let mut dt = DataTamer::new(DataTamerConfig {
            extent_size: config.extent_size(),
            grouping: config.grouping.clone(),
            storage: config.storage.clone(),
            ..Default::default()
        });
        for s in &sources {
            dt.register_structured(&s.name, &s.records).expect("store accepts records");
        }
        let parser = DomainParser::with_gazetteer(corpus.gazetteer.clone());
        let frags: Vec<(&str, &str)> = corpus
            .fragments
            .iter()
            .map(|f| (f.text.as_str(), f.kind.label()))
            .collect();
        dt.ingest_webtext(parser, frags).expect("store accepts documents");
        ScaledSystem { config, corpus, sources, dt }
    }

    /// Build with text only (no structured sources) — the Table V state.
    pub fn build_text_only(config: HarnessConfig) -> Self {
        let corpus = WebTextCorpus::generate(&config.webtext_config());
        let sources = Vec::new();
        let mut dt = DataTamer::new(DataTamerConfig {
            extent_size: config.extent_size(),
            grouping: config.grouping.clone(),
            storage: config.storage.clone(),
            ..Default::default()
        });
        let parser = DomainParser::with_gazetteer(corpus.gazetteer.clone());
        let frags: Vec<(&str, &str)> = corpus
            .fragments
            .iter()
            .map(|f| (f.text.as_str(), f.kind.label()))
            .collect();
        dt.ingest_webtext(parser, frags).expect("store accepts documents");
        ScaledSystem { config, corpus, sources, dt }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_scales_counts_and_extents() {
        let c = HarnessConfig { scale: 0.001, ..Default::default() };
        assert_eq!(c.num_fragments(), 17_732);
        assert!((c.extent_size() as f64 - 2_147_483.6).abs() < 2.0);
        let tiny = HarnessConfig { scale: 1e-9, ..Default::default() };
        assert_eq!(tiny.num_fragments(), 50, "fragment floor");
        assert_eq!(tiny.extent_size(), 64 * 1024, "extent floor");
    }

    #[test]
    fn build_tiny_system_end_to_end() {
        let sys = ScaledSystem::build(HarnessConfig {
            scale: 1.0 / 200_000.0,
            padding_sentences: 1,
            background_mentions: 2,
            ..Default::default()
        });
        assert_eq!(sys.sources.len(), 20);
        assert!(sys.dt.text_stats().instances > 0);
        assert!(sys.dt.global_schema().len() >= 3);
        let fused = sys.dt.fuse();
        assert!(!fused.is_empty());
    }
}
