//! One function per paper table/figure (experiment index in DESIGN.md §4).

use std::time::{Duration, Instant};

use datatamer_core::fusion::{
    CHEAPEST_PRICE, FIRST, PERFORMANCE, SHOW_NAME, TEXT_FEED, THEATER,
};
use datatamer_core::query::DiscussedShow;
use datatamer_core::{DataTamer, ExpertPanelResolver};
use datatamer_corpus::truth::{labeled_pairs_with, GroundTruth, PairDifficulty, DEDUP_EVAL_TYPES};
use datatamer_corpus::{ftables, names};
use datatamer_ml::dedup::crossval_dedup;
use datatamer_ml::logreg::LogRegConfig;
use datatamer_ml::BinaryMetrics;
use datatamer_model::{AttrId, SourceSchema};
use datatamer_schema::{CompositeMatcher, Decision, IntegrationConfig, SchemaIntegrator};
use datatamer_storage::CollectionStats;
use datatamer_text::EntityType;

use crate::setup::{paper, ScaledSystem};

/// T1/T2: measured stats next to the paper's numbers.
#[derive(Debug)]
pub struct StatsComparison {
    /// The measured `db.<coll>.stats()`.
    pub measured: CollectionStats,
    /// Paper values `(count, extents, nindexes, last_extent, index_size)`.
    pub paper: (u64, usize, usize, usize, usize),
    /// Scale used.
    pub scale: f64,
}

impl StatsComparison {
    /// Measured count as a fraction of the paper count (≈ `scale` when the
    /// generator is calibrated).
    pub fn count_ratio(&self) -> f64 {
        self.measured.count as f64 / self.paper.0 as f64
    }
}

/// T1 — Table I: WEBINSTANCE collection statistics.
pub fn t1_instance_stats(sys: &ScaledSystem) -> StatsComparison {
    StatsComparison {
        measured: sys.dt.collection_stats("instance").expect("instance ingested"),
        paper: (
            paper::INSTANCE_COUNT,
            paper::INSTANCE_EXTENTS,
            paper::INSTANCE_NINDEXES,
            paper::INSTANCE_LAST_EXTENT,
            paper::INSTANCE_INDEX_SIZE,
        ),
        scale: sys.config.scale,
    }
}

/// T2 — Table II: WEBENTITIES collection statistics.
pub fn t2_entity_stats(sys: &ScaledSystem) -> StatsComparison {
    StatsComparison {
        measured: sys.dt.collection_stats("entity").expect("entities ingested"),
        paper: (
            paper::ENTITY_COUNT,
            paper::ENTITY_EXTENTS,
            paper::ENTITY_NINDEXES,
            paper::ENTITY_LAST_EXTENT,
            paper::ENTITY_INDEX_SIZE,
        ),
        scale: sys.config.scale,
    }
}

/// One row of the Table III comparison.
#[derive(Debug, Clone)]
pub struct TypeRow {
    pub entity_type: String,
    pub measured: u64,
    pub measured_share: f64,
    pub paper_count: u64,
    pub paper_share: f64,
}

/// T3 — Table III: entity counts by type, measured share vs paper share.
pub fn t3_type_histogram(sys: &ScaledSystem) -> Vec<TypeRow> {
    let measured = sys.dt.entity_histogram().expect("in-memory store");
    let total: u64 = measured.iter().map(|(_, n)| n).sum();
    let paper_total: u64 = EntityType::ALL.iter().map(|t| t.paper_count()).sum();
    measured
        .into_iter()
        .map(|(name, n)| {
            let paper_count = EntityType::from_name(&name).map(|t| t.paper_count()).unwrap_or(0);
            TypeRow {
                entity_type: name,
                measured: n,
                measured_share: n as f64 / total.max(1) as f64,
                paper_count,
                paper_share: paper_count as f64 / paper_total as f64,
            }
        })
        .collect()
}

/// T4 — Table IV: top-10 most discussed award-winning movies/shows, plus the
/// paper's list for side-by-side comparison.
pub fn t4_top10(sys: &ScaledSystem) -> (Vec<DiscussedShow>, [&'static str; 10]) {
    (sys.dt.top_discussed(10).expect("in-memory store"), names::TABLE_IV_SHOWS)
}

/// A rendered demo-query result: ordered `(attribute, value)` rows.
pub type QueryRows = Vec<(String, String)>;

fn render_fused(record: &datatamer_model::Record, attrs: &[&str]) -> QueryRows {
    attrs
        .iter()
        .filter_map(|a| record.get_text(a).map(|v| (a.to_string(), v)))
        .collect()
}

/// T5 — Table V: Matilda from web text only (`SHOW_NAME`, `TEXT_FEED`).
pub fn t5_matilda_text_only(sys: &ScaledSystem) -> QueryRows {
    let fused = sys.dt.fuse_text_only();
    match DataTamer::lookup(&fused, "Matilda") {
        Some(f) => render_fused(
            &f.record,
            &[SHOW_NAME, THEATER, PERFORMANCE, TEXT_FEED, CHEAPEST_PRICE, FIRST],
        ),
        None => Vec::new(),
    }
}

/// T6 — Table VI: Matilda after fusing FTABLES (enriched).
pub fn t6_matilda_fused(sys: &ScaledSystem) -> QueryRows {
    let fused = sys.dt.fuse();
    match DataTamer::lookup(&fused, "Matilda") {
        Some(f) => render_fused(
            &f.record,
            &[SHOW_NAME, THEATER, PERFORMANCE, TEXT_FEED, CHEAPEST_PRICE, FIRST],
        ),
        None => Vec::new(),
    }
}

/// One step of the F2 bootstrap trajectory.
#[derive(Debug, Clone)]
pub struct BootstrapStep {
    pub source: String,
    pub global_attrs_before: usize,
    pub global_attrs_after: usize,
    pub auto_accepted: usize,
    pub human_interventions: usize,
    pub new_attributes: usize,
    pub automation_rate: f64,
}

/// F2 — Figure 2: bottom-up global schema initialisation. Integrates the 20
/// FTABLES sources in order and records how human intervention falls as the
/// schema matures. `expert_accuracy`: `None` = thresholds only; `Some(p)` =
/// 3-expert panel at accuracy `p` answering from ground truth.
pub fn f2_bootstrap_trajectory(
    sources: &[ftables::GeneratedSource],
    expert_accuracy: Option<f64>,
) -> Vec<BootstrapStep> {
    let gt = GroundTruth::from_sources(sources);
    let mut integrator = SchemaIntegrator::new(
        CompositeMatcher::broadway(),
        IntegrationConfig::default(),
    );
    // Global attr id -> canonical identity, maintained from ground truth as
    // the schema grows (used by the expert oracle).
    let mut canon_of_attr: std::collections::HashMap<AttrId, &'static str> = Default::default();
    let mut steps = Vec::with_capacity(sources.len());
    for s in sources {
        let schema = SourceSchema::profile_records(s.id, &s.name, &s.records);
        let before = integrator.global().len();
        let report = if let Some(acc) = expert_accuracy {
            let canon_snapshot = canon_of_attr.clone();
            let name_to_attr: std::collections::HashMap<String, AttrId> = integrator
                .global()
                .iter()
                .map(|g| (g.name.clone(), g.id))
                .collect();
            let source_name = s.name.clone();
            let gt_map = gt.attr_mappings.clone();
            let truth = Box::new(move |attr: &str, candidate: &str| {
                let Some(truth_canon) =
                    gt_map.get(&(source_name.clone(), attr.to_owned())).copied()
                else {
                    return false;
                };
                name_to_attr
                    .get(candidate)
                    .and_then(|id| canon_snapshot.get(id))
                    .is_some_and(|c| *c == truth_canon)
            });
            let mut panel = ExpertPanelResolver::homogeneous(3, acc, 1.0, 17, truth);
            integrator.integrate_with(&schema, &mut panel)
        } else {
            integrator.integrate(&schema)
        };
        // Update canonical identities for newly created attributes.
        for sugg in &report.suggestions {
            if matches!(
                sugg.decision,
                Decision::NewAttribute | Decision::ExpertNewAttribute
            ) {
                if let Some(truth_canon) = gt.canonical_of(&s.name, &sugg.source_attr) {
                    if let Some(g) = integrator.global().by_name(&sugg.source_attr) {
                        canon_of_attr.entry(g.id).or_insert(truth_canon);
                    }
                }
            }
        }
        steps.push(BootstrapStep {
            source: s.name.clone(),
            global_attrs_before: before,
            global_attrs_after: integrator.global().len(),
            auto_accepted: report.auto_accepted(),
            human_interventions: report.human_interventions(),
            new_attributes: report.new_attributes(),
            automation_rate: report.automation_rate(),
        });
    }
    steps
}

/// One row of the F2 expert-accuracy ablation.
#[derive(Debug, Clone)]
pub struct ExpertAblationRow {
    /// Panel accuracy; `None` = thresholds only (AcceptBest).
    pub accuracy: Option<f64>,
    /// Total escalations answered by humans across all 20 sources.
    pub total_human: usize,
    /// Final global-schema size.
    pub final_attrs: usize,
    /// Mean automation rate over the non-seed sources.
    pub mean_automation: f64,
}

/// F2 ablation: rerun the bootstrap with expert panels of varying accuracy.
/// Better experts should not make the schema worse; the measurable signal
/// is schema convergence (final size) and residual human load.
pub fn f2_expert_ablation(
    sources: &[ftables::GeneratedSource],
    accuracies: &[Option<f64>],
) -> Vec<ExpertAblationRow> {
    accuracies
        .iter()
        .map(|acc| {
            let steps = f2_bootstrap_trajectory(sources, *acc);
            let total_human = steps.iter().map(|s| s.human_interventions).sum();
            let final_attrs = steps.last().map(|s| s.global_attrs_after).unwrap_or(0);
            let n = steps.len().saturating_sub(1).max(1);
            let mean_automation =
                steps.iter().skip(1).map(|s| s.automation_rate).sum::<f64>() / n as f64;
            ExpertAblationRow { accuracy: *acc, total_human, final_attrs, mean_automation }
        })
        .collect()
}

/// One point of the F3 threshold sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    pub threshold: f64,
    /// Precision of auto-accepted matches vs ground truth.
    pub precision: f64,
    /// Recall: fraction of truly-mappable attributes auto-accepted.
    pub recall: f64,
    /// Attributes escalated to experts at this threshold.
    pub escalated: usize,
}

/// F3 — Figure 3: matching a source against a mature global schema while
/// sweeping the acceptance threshold. Sources `0..split` build the schema;
/// sources `split..` are scored; a decision is *correct* when the top
/// candidate's canonical identity equals the source attribute's.
pub fn f3_threshold_sweep(
    sources: &[ftables::GeneratedSource],
    split: usize,
    thresholds: &[f64],
) -> Vec<SweepPoint> {
    assert!(split >= 1 && split < sources.len(), "split must leave both phases non-empty");
    let gt = GroundTruth::from_sources(sources);
    let mut integrator = SchemaIntegrator::new(
        CompositeMatcher::broadway(),
        IntegrationConfig::default(),
    );
    let mut canon_of_attr: std::collections::HashMap<AttrId, &'static str> = Default::default();
    for s in &sources[..split] {
        let schema = SourceSchema::profile_records(s.id, &s.name, &s.records);
        let report = integrator.integrate(&schema);
        for sugg in &report.suggestions {
            if matches!(sugg.decision, Decision::NewAttribute | Decision::ExpertNewAttribute) {
                if let Some(tc) = gt.canonical_of(&s.name, &sugg.source_attr) {
                    if let Some(g) = integrator.global().by_name(&sugg.source_attr) {
                        canon_of_attr.entry(g.id).or_insert(tc);
                    }
                }
            }
        }
    }
    // Score the held-out sources once; sweep thresholds over the scores.
    struct Scored {
        truth_canon: Option<&'static str>,
        top: Option<(AttrId, f64)>,
    }
    let mut scored: Vec<Scored> = Vec::new();
    for s in &sources[split..] {
        let schema = SourceSchema::profile_records(s.id, &s.name, &s.records);
        for (attr_name, candidates) in integrator.dry_run(&schema) {
            scored.push(Scored {
                truth_canon: gt.canonical_of(&s.name, &attr_name),
                top: candidates.first().map(|c| (c.attr, c.score)),
            });
        }
    }
    let escalate_floor = IntegrationConfig::default().escalate_threshold;
    thresholds
        .iter()
        .map(|&threshold| {
            let mut tp = 0usize;
            let mut fp = 0usize;
            let mut mappable = 0usize;
            let mut escalated = 0usize;
            for s in &scored {
                // "Mappable" = its canonical already exists in the schema.
                let target_exists = s
                    .truth_canon
                    .is_some_and(|tc| canon_of_attr.values().any(|c| *c == tc));
                if target_exists {
                    mappable += 1;
                }
                match s.top {
                    Some((attr, score)) if score >= threshold => {
                        let correct = s
                            .truth_canon
                            .is_some_and(|tc| canon_of_attr.get(&attr) == Some(&tc));
                        if correct {
                            tp += 1;
                        } else {
                            fp += 1;
                        }
                    }
                    Some((_, score)) if score >= escalate_floor => escalated += 1,
                    _ => {}
                }
            }
            SweepPoint {
                threshold,
                precision: if tp + fp == 0 { 1.0 } else { tp as f64 / (tp + fp) as f64 },
                recall: if mappable == 0 { 0.0 } else { tp as f64 / mappable as f64 },
                escalated,
            }
        })
        .collect()
}

/// M1 — §IV: per-type 10-fold cross-validated dedup precision/recall, at
/// the paper-band difficulty (aliases + doppelgangers; see
/// [`PairDifficulty::paper_band`]).
pub fn m1_dedup_crossval(pairs_per_type: usize) -> Vec<(EntityType, BinaryMetrics)> {
    m1_dedup_crossval_at(pairs_per_type, PairDifficulty::paper_band())
}

/// M1 ablation: same protocol under explicit difficulty.
pub fn m1_dedup_crossval_at(
    pairs_per_type: usize,
    difficulty: PairDifficulty,
) -> Vec<(EntityType, BinaryMetrics)> {
    DEDUP_EVAL_TYPES
        .iter()
        .map(|&ty| {
            let pairs: Vec<(String, String, bool)> =
                labeled_pairs_with(ty, pairs_per_type, 42, difficulty)
                    .into_iter()
                    .map(|p| (p.a, p.b, p.same))
                    .collect();
            let m = crossval_dedup(&pairs, 10, 7, &LogRegConfig::default()).metrics();
            (ty, m)
        })
        .collect()
}

/// M2 — text cleaning + parsing throughput at a given fragment count.
#[derive(Debug, Clone)]
pub struct ThroughputPoint {
    pub fragments: usize,
    pub elapsed: Duration,
    pub fragments_per_sec: f64,
    pub dropped: usize,
}

/// M2 — time the clean→parse→store path over the corpus.
pub fn m2_text_preprocess_throughput(sys_config: crate::HarnessConfig) -> ThroughputPoint {
    let corpus = datatamer_corpus::webtext::WebTextCorpus::generate(&sys_config.webtext_config());
    let parser =
        datatamer_text::DomainParser::with_gazetteer(corpus.gazetteer.clone());
    let mut dt = DataTamer::new(datatamer_core::DataTamerConfig {
        extent_size: sys_config.extent_size(),
        ..Default::default()
    });
    let frags: Vec<(&str, &str)> = corpus
        .fragments
        .iter()
        .map(|f| (f.text.as_str(), f.kind.label()))
        .collect();
    let start = Instant::now();
    let stats = dt.ingest_webtext(parser, frags).expect("in-memory store");
    let elapsed = start.elapsed();
    ThroughputPoint {
        fragments: stats.fragments_seen,
        elapsed,
        fragments_per_sec: stats.fragments_seen as f64 / elapsed.as_secs_f64().max(1e-9),
        dropped: stats.fragments_dropped,
    }
}

/// F1 — per-stage wall-clock of the full pipeline (the architecture of
/// Figure 1, measured).
#[derive(Debug, Clone)]
pub struct StageTimings {
    pub generate: Duration,
    pub structured_integration: Duration,
    pub text_ingest: Duration,
    pub fusion: Duration,
    pub query: Duration,
}

/// F1 — run the whole pipeline, timing each architecture stage.
pub fn f1_pipeline_stages(config: crate::HarnessConfig) -> StageTimings {
    let t0 = Instant::now();
    let corpus = datatamer_corpus::webtext::WebTextCorpus::generate(&config.webtext_config());
    let sources = ftables::generate(
        &ftables::FtablesConfig { seed: config.seed ^ 0xF7AB, ..Default::default() },
        1000,
    );
    let generate = t0.elapsed();

    let mut dt = DataTamer::new(datatamer_core::DataTamerConfig {
        extent_size: config.extent_size(),
        ..Default::default()
    });
    let t1 = Instant::now();
    for s in &sources {
        dt.register_structured(&s.name, &s.records).expect("in-memory store");
    }
    let structured_integration = t1.elapsed();

    let parser = datatamer_text::DomainParser::with_gazetteer(corpus.gazetteer.clone());
    let frags: Vec<(&str, &str)> = corpus
        .fragments
        .iter()
        .map(|f| (f.text.as_str(), f.kind.label()))
        .collect();
    let t2 = Instant::now();
    dt.ingest_webtext(parser, frags).expect("in-memory store");
    let text_ingest = t2.elapsed();

    let t3 = Instant::now();
    let fused = dt.fuse();
    let fusion = t3.elapsed();

    let t4 = Instant::now();
    let _ = DataTamer::lookup(&fused, "Matilda");
    let _ = dt.top_discussed(10);
    let query = t4.elapsed();

    StageTimings { generate, structured_integration, text_ingest, fusion, query }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HarnessConfig;

    fn tiny() -> HarnessConfig {
        HarnessConfig {
            scale: 1.0 / 50_000.0, // ~355 fragments
            background_mentions: 3,
            padding_sentences: 1,
            ..Default::default()
        }
    }

    #[test]
    fn t1_t2_shapes() {
        let sys = ScaledSystem::build(tiny());
        let t1 = t1_instance_stats(&sys);
        assert_eq!(t1.measured.nindexes, 1);
        assert!(t1.measured.count > 300);
        assert!(t1.count_ratio() > 0.0);
        let t2 = t2_entity_stats(&sys);
        assert_eq!(t2.measured.nindexes, 8);
        assert!(t2.measured.count > t1.measured.count, "entities outnumber instances");
        assert!(
            t2.measured.total_index_size > t1.measured.total_index_size,
            "8 indexes must dwarf 1"
        );
    }

    #[test]
    fn t3_shares_track_paper() {
        let sys = ScaledSystem::build(tiny());
        let rows = t3_type_histogram(&sys);
        assert!(rows.len() >= 10, "most types appear: {}", rows.len());
        let person = rows.iter().find(|r| r.entity_type == "Person").unwrap();
        assert!(person.measured_share > 0.08);
        // Rare types stay rare.
        let state = rows.iter().find(|r| r.entity_type == "ProvinceOrState");
        if let Some(state) = state {
            assert!(state.measured < person.measured);
        }
    }

    #[test]
    fn t4_reproduces_paper_top10() {
        let sys = ScaledSystem::build(HarnessConfig {
            scale: 1.0 / 4000.0, // ~4.4k fragments for stable ranks
            padding_sentences: 0,
            background_mentions: 2,
            ..Default::default()
        });
        let (top, paper_list) = t4_top10(&sys);
        assert_eq!(top.len(), 10);
        let got: Vec<&str> = top.iter().map(|s| s.title.as_str()).collect();
        let hits = paper_list.iter().filter(|p| got.contains(*p)).count();
        assert!(hits >= 9, "paper top-10 overlap too low: {hits} ({got:?})");
        assert_eq!(got[0], "The Walking Dead");
    }

    #[test]
    fn t5_t6_matilda_enrichment() {
        let sys = ScaledSystem::build(tiny());
        let t5 = t5_matilda_text_only(&sys);
        let t6 = t6_matilda_fused(&sys);
        let attrs = |rows: &QueryRows| rows.iter().map(|(a, _)| a.clone()).collect::<Vec<_>>();
        assert!(attrs(&t5).contains(&"TEXT_FEED".to_owned()));
        assert!(!attrs(&t5).contains(&"THEATER".to_owned()), "{t5:?}");
        for a in ["SHOW_NAME", "THEATER", "PERFORMANCE", "TEXT_FEED", "CHEAPEST_PRICE", "FIRST"] {
            assert!(attrs(&t6).contains(&a.to_owned()), "{a} missing from T6: {t6:?}");
        }
        // The paper's exact values survive the pipeline.
        let get = |rows: &QueryRows, k: &str| {
            rows.iter().find(|(a, _)| a == k).map(|(_, v)| v.clone()).unwrap()
        };
        assert_eq!(get(&t6, "CHEAPEST_PRICE"), "$27");
        assert_eq!(get(&t6, "FIRST"), "3/4/2013");
        assert!(get(&t6, "THEATER").starts_with("Shubert"));
        assert!(get(&t6, "TEXT_FEED").contains("960,998"));
    }

    #[test]
    fn f2_intervention_declines() {
        let sources = ftables::generate(&ftables::FtablesConfig::default(), 0);
        let steps = f2_bootstrap_trajectory(&sources, None);
        assert_eq!(steps.len(), 20);
        assert_eq!(steps[0].human_interventions, 0, "empty schema asks nothing");
        assert!(steps[0].new_attributes >= 3);
        // Bootstrap alerts ("no counterpart in the global schema") are a
        // front-loaded phenomenon: they concentrate in the first few
        // sources and vanish once the schema matures.
        let early_alerts: usize = steps[..5].iter().map(|s| s.new_attributes).sum();
        let late_alerts: usize = steps[10..].iter().map(|s| s.new_attributes).sum();
        assert!(early_alerts >= 6, "bootstrap must raise alerts: {early_alerts}");
        assert_eq!(late_alerts, 0, "mature schema must stop raising new-attribute alerts");
        // Intervention stays rare after maturity: no late source escalates
        // more than a handful of its ~12 attributes to a human.
        for s in &steps[10..] {
            assert!(
                s.human_interventions <= 3,
                "mature-schema source {} needed {} human answers",
                s.source,
                s.human_interventions
            );
        }
        // The schema converges instead of proliferating.
        let final_attrs = steps.last().unwrap().global_attrs_after;
        assert!(final_attrs <= 24, "global schema exploded: {final_attrs}");
    }

    #[test]
    fn f2_expert_ablation_converges_for_all_panels() {
        let sources = ftables::generate(&ftables::FtablesConfig::default(), 0);
        let rows = f2_expert_ablation(&sources, &[None, Some(0.95), Some(0.6)]);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(
                (10..=22).contains(&r.final_attrs),
                "{:?}: schema size {}",
                r.accuracy,
                r.final_attrs
            );
            assert!((0.0..=1.0).contains(&r.mean_automation));
        }
        // Strong experts answer at least as many escalations as AcceptBest
        // records (every escalated suggestion is a human touch either way).
        assert!(rows[1].total_human > 0);
    }

    #[test]
    fn f3_threshold_tradeoff() {
        let sources = ftables::generate(&ftables::FtablesConfig::default(), 0);
        let points = f3_threshold_sweep(&sources, 10, &[0.5, 0.7, 0.9]);
        assert_eq!(points.len(), 3);
        // Higher threshold: precision must not drop, recall must not rise.
        assert!(points[2].precision >= points[0].precision - 1e-9);
        assert!(points[2].recall <= points[0].recall + 1e-9);
        assert!(points[0].precision > 0.6, "low-threshold precision: {}", points[0].precision);
    }

    #[test]
    fn m1_metrics_in_band() {
        let mut psum = 0.0;
        let mut rsum = 0.0;
        let results = m1_dedup_crossval(600);
        for (ty, m) in &results {
            assert!(m.precision >= 0.80, "{ty:?}: {m}");
            assert!(m.recall >= 0.80, "{ty:?}: {m}");
            psum += m.precision;
            rsum += m.recall;
        }
        // Macro averages land in the paper's 89/90 neighbourhood.
        let p = psum / results.len() as f64;
        let r = rsum / results.len() as f64;
        assert!((0.84..=0.97).contains(&p), "macro precision {p:.3}");
        assert!((0.84..=0.97).contains(&r), "macro recall {r:.3}");
    }

    #[test]
    fn m1_separable_pairs_beat_ambiguous() {
        let easy = m1_dedup_crossval_at(400, PairDifficulty::separable(0.6, false));
        let hard = m1_dedup_crossval_at(400, PairDifficulty::paper_band());
        let f1 = |rs: &[(EntityType, datatamer_ml::BinaryMetrics)]| {
            rs.iter().map(|(_, m)| m.f1).sum::<f64>() / rs.len() as f64
        };
        assert!(
            f1(&easy) > f1(&hard),
            "ambiguity must cost accuracy: {} vs {}",
            f1(&easy),
            f1(&hard)
        );
    }
}
