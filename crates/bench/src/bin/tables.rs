//! Regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p datatamer-bench --bin tables -- all
//! cargo run --release -p datatamer-bench --bin tables -- t1 t4 m1 --scale 0.0005
//! ```
//!
//! Experiment ids (DESIGN.md §4): t1 t2 t3 t4 t5 t6 f1 f2 f3 m1 m2, or
//! `all`. Options: `--scale <f64>` (fraction of paper volume, default
//! 1/5000), `--seed <u64>`.

use std::collections::HashSet;

use datatamer_bench::{
    f1_pipeline_stages, f2_bootstrap_trajectory, f2_expert_ablation, f3_threshold_sweep,
    m1_dedup_crossval, m2_text_preprocess_throughput, t1_instance_stats, t2_entity_stats,
    t3_type_histogram, t4_top10, t5_matilda_text_only, t6_matilda_fused, HarnessConfig,
    ScaledSystem,
};
use datatamer_corpus::ftables::{self, FtablesConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut wanted: HashSet<String> = HashSet::new();
    let mut config = HarnessConfig::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                config.scale = args[i].parse().expect("--scale takes a float");
            }
            "--seed" => {
                i += 1;
                config.seed = args[i].parse().expect("--seed takes an integer");
            }
            id => {
                wanted.insert(id.to_lowercase());
            }
        }
        i += 1;
    }
    if wanted.is_empty() || wanted.contains("all") {
        wanted = ["t1", "t2", "t3", "t4", "t5", "t6", "f1", "f2", "f3", "m1", "m2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
    }

    println!("# Data Tamer reproduction — paper tables & figures");
    println!(
        "# scale={} seed={:#x} fragments={} extent_size={}",
        config.scale,
        config.seed,
        config.num_fragments(),
        config.extent_size()
    );
    println!();

    let needs_system = ["t1", "t2", "t3", "t4", "t5", "t6"]
        .iter()
        .any(|id| wanted.contains(*id));
    let sys = needs_system.then(|| {
        eprintln!("[building scaled system...]");
        ScaledSystem::build(config.clone())
    });

    if let Some(sys) = &sys {
        if wanted.contains("t1") {
            let cmp = t1_instance_stats(sys);
            println!("== TABLE I: SEMI-STRUCTURED SHARDED WEB-INSTANCE COLLECTION STATISTICS ==");
            println!("> db.instance.stats();   (measured, at scale {})", cmp.scale);
            println!("{}", cmp.measured);
            print_stats_comparison(&cmp);
            println!();
        }
        if wanted.contains("t2") {
            let cmp = t2_entity_stats(sys);
            println!("== TABLE II: WEB-ENTITIES COLLECTION STATISTICS ==");
            println!("> db.entity.stats();   (measured, at scale {})", cmp.scale);
            println!("{}", cmp.measured);
            print_stats_comparison(&cmp);
            println!();
        }
        if wanted.contains("t3") {
            println!("== TABLE III: STATISTICS BY ENTITY TYPE IN WEB-ENTITIES ==");
            println!("+------------------+----------+--------+-------------+--------+");
            println!("| type             | measured | share  | paper       | share  |");
            println!("+------------------+----------+--------+-------------+--------+");
            for row in t3_type_histogram(sys) {
                println!(
                    "| {:<16} | {:>8} | {:>5.1}% | {:>11} | {:>5.1}% |",
                    row.entity_type,
                    row.measured,
                    row.measured_share * 100.0,
                    row.paper_count,
                    row.paper_share * 100.0
                );
            }
            println!("+------------------+----------+--------+-------------+--------+");
            println!();
        }
        if wanted.contains("t4") {
            let (top, paper_list) = t4_top10(sys);
            println!("== TABLE IV: TOP 10 MOST DISCUSSED AWARD-WINNING MOVIES/SHOWS ==");
            println!("| {:<28} | mentions || paper's list", "MOVIE/SHOW (measured)");
            for (i, show) in top.iter().enumerate() {
                let paper = paper_list.get(i).copied().unwrap_or("");
                println!("| \"{:<26}\" | {:>8} || \"{}\"", show.title, show.mentions, paper);
            }
            let got: Vec<&str> = top.iter().map(|s| s.title.as_str()).collect();
            let hits = paper_list.iter().filter(|p| got.contains(*p)).count();
            println!("(overlap with the paper's top-10: {hits}/10)");
            println!();
        }
        if wanted.contains("t5") {
            println!("== TABLE V: QUERY RESULTS FOR THE \"MATILDA\" SHOW FROM WEB-TEXT ==");
            for (attr, value) in t5_matilda_text_only(sys) {
                println!("{:<15} {}", attr, quoted(&value));
            }
            println!();
        }
        if wanted.contains("t6") {
            println!("== TABLE VI: ENRICHED QUERY RESULTS FROM WEB-TEXT AND FUSION TABLES ==");
            for (attr, value) in t6_matilda_fused(sys) {
                println!("{:<15} {}", attr, quoted(&value));
            }
            println!();
        }
    }

    if wanted.contains("f1") {
        println!("== FIGURE 1: ARCHITECTURE AS A MEASURED PIPELINE (per-stage wall clock) ==");
        let t = f1_pipeline_stages(config.clone());
        println!("generate datasets       : {:>10.1?}", t.generate);
        println!("structured integration  : {:>10.1?}", t.structured_integration);
        println!("text ingest (clean+parse): {:>9.1?}", t.text_ingest);
        println!("fusion                  : {:>10.1?}", t.fusion);
        println!("demo queries            : {:>10.1?}", t.query);
        println!();
    }

    if wanted.contains("f2") || wanted.contains("f3") {
        let sources = ftables::generate(
            &FtablesConfig { seed: config.seed ^ 0xF7AB, ..Default::default() },
            1000,
        );
        if wanted.contains("f2") {
            println!("== FIGURE 2: GLOBAL SCHEMA INITIALISATION (bottom-up bootstrap) ==");
            println!("source     | attrs | auto | human | new-attr alerts | automation");
            for s in f2_bootstrap_trajectory(&sources, None) {
                println!(
                    "{:<10} | {:>5} | {:>4} | {:>5} | {:>15} | {:>9.0}%",
                    s.source,
                    s.global_attrs_after,
                    s.auto_accepted,
                    s.human_interventions,
                    s.new_attributes,
                    s.automation_rate * 100.0
                );
            }
            println!("(early sources raise 'no counterpart' alerts; intervention falls as the schema matures)");
            println!();
            println!("-- F2 ablation: expert-panel accuracy --");
            println!("panel          | human answers | final attrs | mean automation");
            for r in f2_expert_ablation(&sources, &[None, Some(0.95), Some(0.8), Some(0.6)]) {
                let label = match r.accuracy {
                    None => "thresholds only".to_owned(),
                    Some(a) => format!("3 experts @{a:.2}"),
                };
                println!(
                    "{label:<14} | {:>13} | {:>11} | {:>14.0}%",
                    r.total_human,
                    r.final_attrs,
                    r.mean_automation * 100.0
                );
            }
            println!();
        }
        if wanted.contains("f3") {
            println!("== FIGURE 3: SCHEMA MATCHING vs ACCEPTANCE THRESHOLD (10 seed sources, 10 held out) ==");
            println!("threshold | precision | recall | escalated-to-expert");
            let thresholds = [0.50, 0.55, 0.60, 0.65, 0.70, 0.75, 0.80, 0.85, 0.90, 0.95];
            for p in f3_threshold_sweep(&sources, 10, &thresholds) {
                println!(
                    "   {:.2}   |   {:>5.1}%  | {:>5.1}% | {:>4}",
                    p.threshold,
                    p.precision * 100.0,
                    p.recall * 100.0,
                    p.escalated
                );
            }
            println!();
        }
    }

    if wanted.contains("m1") {
        println!("== §IV CLAIM (M1): DEDUP CLASSIFIER, 10-FOLD CROSS-VALIDATION PER ENTITY TYPE ==");
        println!("(paper: 89/90% precision/recall on several entity types)");
        let results = m1_dedup_crossval(1_000);
        let mut psum = 0.0;
        let mut rsum = 0.0;
        for (ty, m) in &results {
            println!("{:<14} {}", format!("{ty:?}:"), m);
            psum += m.precision;
            rsum += m.recall;
        }
        println!(
            "macro average: P={:.1}% R={:.1}%   (paper: P=89% R=90%)",
            psum / results.len() as f64 * 100.0,
            rsum / results.len() as f64 * 100.0
        );
        println!();
    }

    if wanted.contains("m2") {
        println!("== §IV CLAIM (M2): ML TEXT CLEANING + PRE-PROCESSING THROUGHPUT ==");
        for scale_div in [4.0, 2.0, 1.0] {
            let cfg = HarnessConfig { scale: config.scale / scale_div, ..config.clone() };
            let p = m2_text_preprocess_throughput(cfg);
            println!(
                "{:>7} fragments: {:>8.2?} total, {:>9.0} fragments/s ({} dropped as junk)",
                p.fragments, p.elapsed, p.fragments_per_sec, p.dropped
            );
        }
        println!();
    }
}

fn print_stats_comparison(cmp: &datatamer_bench::StatsComparison) {
    let (count, extents, nindexes, last, idx) = cmp.paper;
    println!(
        "paper:    count={count} numExtents={extents} nindexes={nindexes} \
         lastExtentSize={last} totalIndexSize={idx}"
    );
    println!(
        "measured/paper count ratio: {:.5} (configured scale {:.5})",
        cmp.count_ratio(),
        cmp.scale
    );
}

fn quoted(v: &str) -> String {
    format!("\"{v}\"")
}
