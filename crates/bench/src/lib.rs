//! Shared harness for the paper-reproduction experiments.
//!
//! Every table and figure of the paper maps to a function here (see
//! DESIGN.md §4 for the experiment index); the `tables` binary prints them
//! and the criterion benches time them. Everything is deterministic given
//! the seeds in [`HarnessConfig`].

// The bench harness exists to measure wall time; clippy.toml disallows
// the clock constructors in every other crate.
#![allow(clippy::disallowed_methods)]

pub mod experiments;
pub mod setup;

pub use experiments::*;
pub use setup::{HarnessConfig, ScaledSystem};
