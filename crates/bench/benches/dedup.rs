//! Dedup benches — experiment M1 and the blocking ablation.
//!
//! Times pair featurisation, classifier training, the full 10-fold
//! cross-validation protocol, and compares candidate generation across the
//! four blocking strategies (the design-choice ablation of DESIGN.md).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use datatamer_corpus::truth::labeled_pairs;
use datatamer_entity::blocking::{Blocker, BlockingStrategy};
use datatamer_ml::dedup::{crossval_dedup, DedupClassifier, PairFeatures};
use datatamer_ml::logreg::LogRegConfig;
use datatamer_model::{Record, RecordId, SourceId, Value};
use datatamer_text::EntityType;

fn pairs(n: usize) -> Vec<(String, String, bool)> {
    labeled_pairs(EntityType::Person, n, 42, 0.6, false)
        .into_iter()
        .map(|p| (p.a, p.b, p.same))
        .collect()
}

fn bench_featurize(c: &mut Criterion) {
    let ps = pairs(1_000);
    let mut group = c.benchmark_group("dedup_featurize");
    group.throughput(Throughput::Elements(ps.len() as u64));
    group.bench_function("1000_pairs", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for (a, bb, _) in &ps {
                acc += PairFeatures::extract(a, bb)[0];
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_train(c: &mut Criterion) {
    let ps = pairs(1_000);
    c.bench_function("dedup_train_1000", |b| {
        b.iter(|| black_box(DedupClassifier::train(&ps, &LogRegConfig::default())))
    });
}

fn bench_crossval(c: &mut Criterion) {
    let ps = pairs(600);
    c.bench_function("dedup_10fold_crossval_600", |b| {
        b.iter(|| black_box(crossval_dedup(&ps, 10, 7, &LogRegConfig::default()).metrics()))
    });
}

fn show_records(n: usize) -> Vec<Record> {
    let base = labeled_pairs(EntityType::Movie, n, 7, 0.5, false);
    base.into_iter()
        .enumerate()
        .flat_map(|(i, p)| {
            [
                Record::from_pairs(
                    SourceId(0),
                    RecordId(2 * i as u64),
                    vec![("name", Value::from(p.a))],
                ),
                Record::from_pairs(
                    SourceId(1),
                    RecordId(2 * i as u64 + 1),
                    vec![("name", Value::from(p.b))],
                ),
            ]
        })
        .collect()
}

fn bench_blocking_strategies(c: &mut Criterion) {
    let records = show_records(500); // 1000 records
    let mut group = c.benchmark_group("blocking_ablation");
    group.throughput(Throughput::Elements(records.len() as u64));
    for (label, strategy) in [
        ("token", BlockingStrategy::Token),
        ("soundex", BlockingStrategy::Soundex),
        ("sorted_neighborhood_w5", BlockingStrategy::SortedNeighborhood { window: 5 }),
        ("minhash_lsh_8x4", BlockingStrategy::MinHashLsh { bands: 8, rows: 4 }),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &strategy, |b, s| {
            let blocker = Blocker::new("name", *s);
            b.iter(|| black_box(blocker.candidates(&records)).len())
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(12);
    targets = bench_featurize, bench_train, bench_crossval, bench_blocking_strategies
);
criterion_main!(benches);
