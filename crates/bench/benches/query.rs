//! Query & serving benches: plan cost and serving throughput.
//!
//! `query/probe_vs_scan/{4000,12000}` — the same selective predicate
//! (one GENRE value, 1/40 of the rows) executed three ways over one
//! snapshot: the planner's hash-probe, a forced columnar scan, and a
//! forced row-at-a-time full scan. The probe touches only the posting
//! list, so its cell should be roughly flat across corpus sizes while
//! both scans grow linearly — that separation is the reason the index
//! layer exists. All three produce byte-identical results (pinned in
//! `tests/query_oracle.rs`); these cells price the equivalence.
//!
//! `query/qps/{1,4,8}` — loopback HTTP round-trips per second with 1, 4,
//! and 8 concurrent client threads, while a background ingest thread
//! keeps republishing fresh snapshots under the server the whole time
//! (the serving contract: readers never block on ingest, they just see
//! whole snapshots). Throughput counts completed request/response pairs,
//! one TCP connection each, as the front end serves them.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use datatamer_core::fusion::FusedEntity;
use datatamer_model::{Record, RecordId, SourceId, Value};
use datatamer_query::http::{QueryServer, ServerConfig, SharedViews};
use datatamer_query::view::IndexSpec;
use datatamer_query::{Aggregate, CollectionSnapshot, Predicate, Query, ScanMode};

/// Synthetic fused entities with a 40-way categorical attribute (probe
/// target), a numeric attribute, and a short text attribute.
fn entities(n: usize) -> Vec<FusedEntity> {
    (0..n)
        .map(|i| FusedEntity {
            key: format!("k{i:06}"),
            record: Record::from_pairs(
                SourceId(0),
                RecordId(i as u64),
                vec![
                    ("GENRE", Value::from(format!("g{}", i % 40))),
                    ("PRICE", Value::Int((i % 97) as i64)),
                    ("NAME", Value::from(format!("show number {i}"))),
                ],
            ),
            member_count: 1 + i % 3,
            confidence: Some(((i % 10) as f64) / 10.0),
        })
        .collect()
}

fn spec() -> IndexSpec {
    IndexSpec::default().hash_on("GENRE").ordered_on("PRICE")
}

fn bench_probe_vs_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("query/probe_vs_scan");
    group.sample_size(10);
    let q = Query::filtered(Predicate::Eq("GENRE".into(), Value::from("g17")))
        .aggregate(Aggregate::Count);
    for &n in &[4000usize, 12000] {
        let snap = CollectionSnapshot::from_entities(entities(n), spec());
        group.throughput(Throughput::Elements(n as u64));
        for (label, mode) in [
            ("probe", ScanMode::Auto),
            ("columnar", ScanMode::Columnar),
            ("full_scan", ScanMode::FullScan),
        ] {
            group.bench_with_input(BenchmarkId::new(label, n), &snap, |b, snap| {
                b.iter(|| black_box(snap.execute_as(&q, mode).result))
            });
        }
    }
    group.finish();
}

/// One blocking GET; the server closes the connection after responding.
fn http_get(addr: SocketAddr, path: &str) -> usize {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n").expect("send");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("recv");
    assert!(raw.starts_with(b"HTTP/1.1 200"), "bad response");
    raw.len()
}

fn bench_qps_under_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("query/qps");
    group.sample_size(10);

    let views = SharedViews::new();
    let snap_a = CollectionSnapshot::from_entities(entities(4000), spec());
    let snap_b = CollectionSnapshot::from_entities(entities(4100), spec());
    views.publish("bench", snap_a.clone());
    let server = QueryServer::bind("127.0.0.1:0", views.clone(), ServerConfig::default())
        .expect("bind loopback");
    let addr = server.addr();

    // Background ingest: keep swapping full snapshots under the server
    // for the whole benchmark, so every QPS cell measures serving
    // concurrent with publication, not a quiescent registry.
    let stop = Arc::new(AtomicBool::new(false));
    let ingest = {
        let stop = Arc::clone(&stop);
        let views = views.clone();
        std::thread::spawn(move || {
            let mut flip = false;
            while !stop.load(Ordering::SeqCst) {
                views.publish("bench", if flip { snap_b.clone() } else { snap_a.clone() });
                flip = !flip;
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        })
    };

    const REQS_PER_CLIENT: usize = 25;
    let path = "/collections/bench/query?where=GENRE=g17&agg=count";
    for &clients in &[1usize, 4, 8] {
        group.throughput(Throughput::Elements((clients * REQS_PER_CLIENT) as u64));
        group.bench_with_input(BenchmarkId::new("clients", clients), &clients, |b, &clients| {
            b.iter(|| {
                let workers: Vec<_> = (0..clients)
                    .map(|_| {
                        std::thread::spawn(move || {
                            let mut bytes = 0usize;
                            for _ in 0..REQS_PER_CLIENT {
                                bytes += http_get(addr, path);
                            }
                            bytes
                        })
                    })
                    .collect();
                let total: usize =
                    workers.into_iter().map(|w| w.join().expect("client")).sum();
                black_box(total)
            })
        });
    }
    group.finish();

    stop.store(true, Ordering::SeqCst);
    ingest.join().expect("ingest thread");
    server.stop();
}

criterion_group!(benches, bench_probe_vs_scan, bench_qps_under_ingest);
criterion_main!(benches);
