//! Out-of-core scan benches: repeated scans over a file-backed corpus at
//! each extent-cache budget.
//!
//! The corpus is built (and synced) once per cell, *outside* the timed
//! loop — the question is how fast the Nth full scan runs over an
//! existing chain, not how fast ingest is (that's `sharding/*`). Cells:
//!
//! - `memory/N` — in-process reference: every extent resident by
//!   construction. The target the warm cache should approach (within
//!   ~10%).
//! - `file_unbounded/N` — cache budget `None`: after the first scan every
//!   flushed extent is resident, so repeated scans do zero file reads.
//! - `file_half_budget/N` — budget = half the per-shard corpus: the
//!   corpus exceeds the cache, so every scan re-loads the evicted half.
//! - `file_budget0/N` — budget `Some(0)`: the pre-cache behaviour, every
//!   scan loads every flushed extent from disk.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::path::PathBuf;

use datatamer_model::{doc, Document};
use datatamer_storage::{BackendConfig, Collection, CollectionConfig, RoutingPolicy};

const SHARDS: usize = 4;
const EXTENT_SIZE: usize = 64 * 1024;

fn bench_root() -> PathBuf {
    std::env::temp_dir().join(format!("dt_out_of_core_bench_{}", std::process::id()))
}

fn sample_docs(n: usize) -> Vec<Document> {
    (0..n as i64)
        .map(|i| {
            doc! {
                "show" => format!("Show Number{}", i % 97),
                "price" => 20 + (i % 80),
                "pad" => "payload ".repeat(1 + (i % 4) as usize)
            }
        })
        .collect()
}

/// Build a file-backed collection at `budget`, ingest, and flush the tail
/// so scans walk a fully-flushed chain.
fn build_file(dir: PathBuf, budget: Option<usize>, docs: &[Document]) -> Collection {
    let col = Collection::new(
        "bench",
        CollectionConfig {
            extent_size: EXTENT_SIZE,
            shards: SHARDS,
            backend: BackendConfig::File { dir },
            routing: RoutingPolicy::RoundRobin,
            extent_cache_budget: budget,
        },
    )
    .unwrap();
    col.insert_many(docs).unwrap();
    col.sync().unwrap();
    col
}

/// One full scan — the repeated operation under measurement.
fn scan(col: &Collection) -> usize {
    col.parallel_scan(|_, d| d.get("price").cloned()).unwrap().len()
}

fn bench_repeated_scans(c: &mut Criterion) {
    let root = bench_root();
    let _ = std::fs::remove_dir_all(&root);
    let mut group = c.benchmark_group("out_of_core");
    group.sample_size(10);
    for &n in &[4_000usize, 12_000] {
        let docs = sample_docs(n);
        group.throughput(Throughput::Elements(n as u64));

        // In-process reference cell.
        let memory = Collection::new(
            "bench",
            CollectionConfig {
                extent_size: EXTENT_SIZE,
                shards: SHARDS,
                backend: BackendConfig::Memory,
                routing: RoutingPolicy::RoundRobin,
                extent_cache_budget: None,
            },
        )
        .unwrap();
        memory.insert_many(&docs).unwrap();
        group.bench_function(BenchmarkId::new("memory", n), |b| {
            b.iter(|| black_box(scan(&memory)))
        });

        // Unbounded cache: one warm scan, then measure steady state. The
        // warm occupancy also tells us the per-shard corpus size, from
        // which the half-corpus budget below is derived.
        let unbounded = build_file(root.join(format!("unbounded_{n}")), None, &docs);
        assert_eq!(scan(&unbounded), n, "warm-up scan sees every doc");
        let corpus_bytes = unbounded
            .storage_report()
            .cache_totals()
            .map_or(0, |c| c.occupancy_bytes);
        group.bench_function(BenchmarkId::new("file_unbounded", n), |b| {
            b.iter(|| black_box(scan(&unbounded)))
        });

        // Half-corpus budget: the chain is twice the cache, so every scan
        // evicts and re-loads.
        let half = (corpus_bytes / SHARDS / 2).max(EXTENT_SIZE);
        let half_budget =
            build_file(root.join(format!("half_{n}")), Some(half), &docs);
        group.bench_function(BenchmarkId::new("file_half_budget", n), |b| {
            b.iter(|| black_box(scan(&half_budget)))
        });

        // Disabled cache: the pre-cache load-per-read behaviour.
        let budget0 = build_file(root.join(format!("budget0_{n}")), Some(0), &docs);
        group.bench_function(BenchmarkId::new("file_budget0", n), |b| {
            b.iter(|| black_box(scan(&budget0)))
        });
    }
    group.finish();
    // Untimed teardown: leave no bench droppings behind.
    let _ = std::fs::remove_dir_all(&root);
}

criterion_group!(benches, bench_repeated_scans);
criterion_main!(benches);
