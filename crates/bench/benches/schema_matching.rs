//! Schema-integration benches — Figures 2 and 3.
//!
//! `schema_bootstrap` times the bottom-up integration of all 20 FTABLES
//! sources (Fig 2); `schema_match_one` times matching one held-out source
//! against a mature global schema (Fig 3); `matcher_scoring` isolates the
//! matcher-ensemble cost per candidate pair.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use datatamer_bench::{f2_bootstrap_trajectory, f3_threshold_sweep};
use datatamer_corpus::ftables::{self, FtablesConfig};
use datatamer_model::SourceSchema;
use datatamer_schema::{CompositeMatcher, IntegrationConfig, SchemaIntegrator};

fn sources() -> Vec<ftables::GeneratedSource> {
    ftables::generate(&FtablesConfig::default(), 0)
}

fn bench_bootstrap(c: &mut Criterion) {
    let srcs = sources();
    let mut group = c.benchmark_group("schema_bootstrap");
    group.throughput(Throughput::Elements(srcs.len() as u64));
    group.bench_function("20_sources", |b| {
        b.iter(|| black_box(f2_bootstrap_trajectory(&srcs, None)).len())
    });
    group.finish();
}

fn bench_match_one_source(c: &mut Criterion) {
    let srcs = sources();
    // Mature schema from the first 19 sources.
    let mut integrator = SchemaIntegrator::new(
        CompositeMatcher::broadway(),
        IntegrationConfig::default(),
    );
    for s in &srcs[..19] {
        let schema = SourceSchema::profile_records(s.id, &s.name, &s.records);
        integrator.integrate(&schema);
    }
    let held_out = SourceSchema::profile_records(
        srcs[19].id,
        &srcs[19].name,
        &srcs[19].records,
    );
    c.bench_function("schema_match_one_source", |b| {
        b.iter(|| black_box(integrator.dry_run(&held_out)).len())
    });
}

fn bench_threshold_sweep(c: &mut Criterion) {
    let srcs = sources();
    let thresholds: Vec<f64> = (50..=95).step_by(5).map(|t| t as f64 / 100.0).collect();
    c.bench_function("schema_threshold_sweep", |b| {
        b.iter(|| black_box(f3_threshold_sweep(&srcs, 10, &thresholds)).len())
    });
}

fn bench_profile_source(c: &mut Criterion) {
    let srcs = sources();
    let biggest = srcs.iter().max_by_key(|s| s.records.len()).unwrap();
    let mut group = c.benchmark_group("schema_profile_records");
    group.throughput(Throughput::Elements(biggest.records.len() as u64));
    group.bench_function(format!("{}_rows", biggest.records.len()), |b| {
        b.iter(|| {
            black_box(SourceSchema::profile_records(
                biggest.id,
                &biggest.name,
                &biggest.records,
            ))
            .arity()
        })
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_bootstrap, bench_match_one_source, bench_threshold_sweep,
        bench_profile_source
);
criterion_main!(benches);
