//! Pair-scoring throughput: prepare-once/score-many vs naive per-pair.
//!
//! The interesting axis is the *reuse factor* — how many candidate pairs
//! each record appears in. Blocking controls that number: progressive
//! fallbacks and multi-token buckets put the same record in many pairs, so
//! per-record normalisation amortises across them. At reuse 1 the prepared
//! path pays its prepare pass for a single score per record (worst case);
//! as reuse grows the naive path re-runs `to_text` / parsing / lowercasing
//! / tokenisation per pair while the prepared path re-reads arena slices.
//! Both variants include their full cost inside the timed body (the
//! prepared ones rebuild the [`ScoringContext`] every iteration), so the
//! ids compare end-to-end work at each reuse factor, Rules vs Classifier.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use datatamer_entity::pairsim::{PairScorer, RecordSimilarity};
use datatamer_ml::logreg::LogRegConfig;
use datatamer_ml::DedupClassifier;
use datatamer_model::{Record, RecordId, SourceId, Value};

const N_RULES: usize = 400;
const N_CLASSIFIER: usize = 120;

/// Records with the mixed value shapes the scorer sees after schema
/// mapping: multi-token names with shared vocabulary, money strings,
/// year-like strings, and free-text venues.
fn corpus(n: usize) -> Vec<Record> {
    (0..n)
        .map(|i| {
            Record::from_pairs(
                SourceId(0),
                RecordId(i as u64),
                vec![
                    ("name", Value::from(format!("the great show number{} act {}", i, i % 7))),
                    ("price", Value::from(format!("${}", 20 + i % 180))),
                    ("year", Value::from(format!("{}", 1980 + i % 45))),
                    ("venue", Value::from(format!("grand theatre hall {}", i % 11))),
                ],
            )
        })
        .collect()
}

/// Candidate pairs where each record meets its `k` nearest successors —
/// every record appears in ~`2k` pairs, the reuse factor blocking's
/// windowed fallbacks produce.
fn pairs_with_reuse(n: usize, k: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::with_capacity(n * k);
    for i in 0..n {
        for d in 1..=k {
            if i + d < n {
                out.push((i, i + d));
            }
        }
    }
    out
}

fn accepted_naive(
    scorer: &PairScorer,
    records: &[Record],
    pairs: &[(usize, usize)],
    threshold: f64,
) -> usize {
    pairs
        .iter()
        .filter(|&&(i, j)| scorer.score(&records[i], &records[j]) >= threshold)
        .count()
}

fn accepted_prepared(
    scorer: &PairScorer,
    records: &[Record],
    pairs: &[(usize, usize)],
    threshold: f64,
) -> usize {
    let ctx = scorer.prepare(records);
    pairs.iter().filter(|&&(i, j)| ctx.score_pair(i, j) >= threshold).count()
}

fn bench_rules(c: &mut Criterion) {
    let records = corpus(N_RULES);
    let scorer = PairScorer::Rules(RecordSimilarity::default());
    let mut group = c.benchmark_group("pair_scoring");
    group.sample_size(15);
    for &k in &[1usize, 8, 32] {
        let pairs = pairs_with_reuse(N_RULES, k);
        group.throughput(Throughput::Elements(pairs.len() as u64));
        group.bench_with_input(BenchmarkId::new("rules_naive", k), &pairs, |b, pairs| {
            b.iter(|| black_box(accepted_naive(&scorer, &records, pairs, 0.75)))
        });
        group.bench_with_input(BenchmarkId::new("rules_prepared", k), &pairs, |b, pairs| {
            b.iter(|| black_box(accepted_prepared(&scorer, &records, pairs, 0.75)))
        });
    }
    group.finish();
}

fn bench_classifier(c: &mut Criterion) {
    let training = vec![
        ("Matilda".to_owned(), "matilda".to_owned(), true),
        ("Matilda".to_owned(), "Wicked".to_owned(), false),
        ("Annie".to_owned(), "Annie!".to_owned(), true),
        ("Annie".to_owned(), "Pippin".to_owned(), false),
        ("Goodfellas".to_owned(), "Goodfelas".to_owned(), true),
        ("Goodfellas".to_owned(), "Written".to_owned(), false),
    ];
    let model = DedupClassifier::train(&training, &LogRegConfig::default());
    let scorer = PairScorer::Classifier { key_attr: "name".into(), model };
    let records = corpus(N_CLASSIFIER);
    let mut group = c.benchmark_group("pair_scoring");
    group.sample_size(15);
    for &k in &[1usize, 8] {
        let pairs = pairs_with_reuse(N_CLASSIFIER, k);
        group.throughput(Throughput::Elements(pairs.len() as u64));
        group.bench_with_input(BenchmarkId::new("classifier_naive", k), &pairs, |b, pairs| {
            b.iter(|| black_box(accepted_naive(&scorer, &records, pairs, 0.5)))
        });
        group.bench_with_input(
            BenchmarkId::new("classifier_prepared", k),
            &pairs,
            |b, pairs| b.iter(|| black_box(accepted_prepared(&scorer, &records, pairs, 0.5))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_rules, bench_classifier);
criterion_main!(benches);
