//! Delta ingest vs full re-consolidation: the resident-state payoff.
//!
//! The sweep crosses delta size (32, 128 records) with corpus size (355,
//! 887, 2000 records — the middle point matching the pipeline bench's
//! corpus scale). For each cell the A side clones a preloaded
//! [`IncrementalConsolidator`] and ingests the delta (the clone is an
//! artefact of the bench harness's `iter`-only API and *overstates* the
//! incremental cost — resident state is never copied in real use); the B
//! side re-runs the full batch blocked-ER path — prepare, block, score,
//! cluster — over corpus + delta from scratch. The acceptance line this
//! guards: a ≤15 % delta ingests ≥5× faster than the rebuild at the
//! 887-record scale (the 32-record delta, 3.6 %, measures ~10×).
//!
//! Reading the sweep: both paths must score every *new-vs-old* candidate
//! pair once, and that volume is ~`2·delta/corpus` of the full candidate
//! volume — so for scoring-bound cells the speedup ceiling is
//! `corpus/(2·delta)` (≈3.5× for the 128-record delta at 887, which
//! measures right at its ceiling). The resident state's win grows as the
//! delta fraction shrinks: preparation, blocking, and old-vs-old scoring
//! all drop out entirely.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use datatamer_entity::blocking::{Blocker, BlockingStrategy};
use datatamer_entity::cluster::cluster_pairs;
use datatamer_entity::incremental::IncrementalConsolidator;
use datatamer_entity::pairsim::{PairScorer, RecordSimilarity};
use datatamer_model::{Record, RecordId, SourceId, Value};
use datatamer_storage::DeltaLog;

const THRESHOLD: f64 = 0.75;

/// Entity-group-structured records: ~12 near-duplicates per group plus a
/// cross-group `take` token, so blocking yields intra-group buckets and
/// moderate cross-group candidate volume — all under the bucket cap.
fn records(range: std::ops::Range<usize>) -> Vec<Record> {
    range
        .map(|i| {
            let g = i / 12;
            Record::from_pairs(
                SourceId(0),
                RecordId(i as u64),
                vec![
                    ("name", Value::from(format!("title{g} group{g} take{}", i % 12))),
                    ("price", Value::from(format!("${}", 20 + g % 80))),
                ],
            )
        })
        .collect()
}

fn blocker() -> Blocker {
    Blocker::new("name", BlockingStrategy::Token)
}

fn scorer() -> PairScorer {
    PairScorer::Rules(RecordSimilarity::default())
}

/// The batch blocked-ER path, end to end: prepare the scoring context,
/// block, score candidates, cluster. Mirrors the staged pipeline's
/// non-incremental `BlockedEr` branch.
fn full_rebuild(all: &[Record]) -> usize {
    let ctx = scorer().prepare(all);
    let outcome =
        blocker().candidates_with_report_keyed(all, &|| ctx.sort_keys("name").unwrap());
    let accepted = ctx.accepted_pairs(&outcome.pairs, THRESHOLD);
    cluster_pairs(all.len(), &accepted).len()
}

fn bench_delta_vs_rebuild(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_er");
    group.sample_size(10);
    for &corpus_n in &[355usize, 887, 2000] {
        let corpus = records(0..corpus_n);
        let mut base = IncrementalConsolidator::new(blocker(), scorer(), THRESHOLD);
        base.ingest(&corpus);
        // The harness artifact, measured: every delta_ingest iteration
        // pays one full resident-state clone that real use never does.
        // Subtract this from delta_ingest to read the true ingest cost.
        group.bench_with_input(
            BenchmarkId::new("state_clone", corpus_n),
            &base,
            |b, base| b.iter(|| black_box(base.clone().len())),
        );
        for &delta_n in &[32usize, 128] {
            let delta = records(corpus_n..corpus_n + delta_n);
            let mut all = corpus.clone();
            all.extend(delta.iter().cloned());
            group.throughput(Throughput::Elements(delta_n as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("delta_ingest/{delta_n}"), corpus_n),
                &delta,
                |b, delta| {
                    b.iter(|| {
                        let mut inc = base.clone();
                        black_box(inc.ingest(delta))
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("full_rebuild/{delta_n}"), corpus_n),
                &all,
                |b, all| b.iter(|| black_box(full_rebuild(all))),
            );
        }
    }
    group.finish();
}

/// The price of evicting the score memo: delta ingest over resident
/// state whose memo is unbounded vs capped vs zero. An evicted score
/// recomputes when next needed, so the cells read as "recompute cost
/// bought back per byte of residency" — `memo_hits` in the delta report
/// is the other side of the same coin.
fn bench_eviction_budgets(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_eviction");
    group.sample_size(10);
    let corpus_n = 887usize;
    let corpus = records(0..corpus_n);
    let delta = records(corpus_n..corpus_n + 128);
    for (label, memo_budget) in
        [("memo_unbounded", None), ("memo_512", Some(512usize)), ("memo_0", Some(0))]
    {
        let mut base = IncrementalConsolidator::new(blocker(), scorer(), THRESHOLD)
            .with_memo_budget(memo_budget);
        base.ingest(&corpus);
        group.throughput(Throughput::Elements(delta.len() as u64));
        group.bench_with_input(BenchmarkId::new(label, corpus_n), &delta, |b, delta| {
            b.iter(|| {
                let mut inc = base.clone();
                black_box(inc.ingest(delta))
            })
        });
    }
    group.finish();
}

/// Restart cost: replaying a session's logged delta batches through a
/// fresh consolidator vs re-consolidating the concatenated corpus from
/// scratch. Replay reads the checksummed frames and ingests them as one
/// batch — the same work a reopened `DataTamer` does before its first
/// delta.
fn bench_replay_vs_reseed(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_replay");
    group.sample_size(10);
    let corpus_n = 887usize;
    let corpus = records(0..corpus_n);
    let deltas = records(corpus_n..corpus_n + 128);
    let dir = std::env::temp_dir().join(format!("dt_bench_replay_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("delta.log");
    let _ = std::fs::remove_file(&path);
    {
        let mut log = DeltaLog::open(&path).unwrap();
        for batch in deltas.chunks(32) {
            log.append(batch).unwrap();
        }
    }
    group.bench_function("log_replay", |b| {
        b.iter(|| {
            let log = DeltaLog::open(&path).unwrap();
            let replayed = log.replay_records().unwrap();
            let mut inc = IncrementalConsolidator::new(blocker(), scorer(), THRESHOLD);
            inc.ingest(&corpus);
            inc.ingest(&replayed);
            black_box(inc.len())
        })
    });
    group.bench_function("full_reseed", |b| {
        let mut all = corpus.clone();
        all.extend(deltas.iter().cloned());
        b.iter(|| black_box(full_rebuild(&all)))
    });
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_delta_vs_rebuild, bench_eviction_budgets, bench_replay_vs_reseed);
criterion_main!(benches);
