//! Storage-engine benches — the substrate behind Tables I and II.
//!
//! Measures insert throughput into sharded extents, point reads via packed
//! doc-ids, indexed vs full-scan query execution, and the group-by powering
//! Table III.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use datatamer_model::{doc, Value};
use datatamer_storage::{Collection, CollectionConfig, Filter, IndexSpec, Query};

fn sample_doc(i: i64) -> datatamer_model::Document {
    doc! {
        "type" => ["Person", "Company", "Movie", "City"][(i % 4) as usize],
        "name" => format!("Entity number {i}"),
        "canonical" => format!("entity number {i}"),
        "confidence" => 0.5 + (i % 50) as f64 / 100.0,
        "chars" => i % 240
    }
}

fn seeded_collection(n: i64, indexed: bool) -> Collection {
    let c = Collection::new(
        "bench",
        CollectionConfig { extent_size: 2 * 1024 * 1024, shards: 8, ..Default::default() },
    )
    .unwrap();
    if indexed {
        c.create_index(IndexSpec::new("by_type", "type")).unwrap();
    }
    for i in 0..n {
        c.insert(&sample_doc(i)).unwrap();
    }
    c
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage_insert");
    for &n in &[1_000i64, 10_000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("no_index", n), &n, |b, &n| {
            b.iter(|| {
                let c = seeded_collection(n, false);
                black_box(c.len())
            });
        });
        group.bench_with_input(BenchmarkId::new("one_index", n), &n, |b, &n| {
            b.iter(|| {
                let c = seeded_collection(n, true);
                black_box(c.len())
            });
        });
    }
    group.finish();
}

fn bench_point_read(c: &mut Criterion) {
    let col = seeded_collection(10_000, false);
    let ids: Vec<_> = {
        let mut v = Vec::new();
        col.for_each(|id, _| v.push(id)).unwrap();
        v
    };
    c.bench_function("storage_point_read", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 7919) % ids.len();
            black_box(col.get(ids[i]))
        });
    });
}

fn bench_query_index_vs_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage_query_eq");
    let scan_col = seeded_collection(10_000, false);
    let idx_col = seeded_collection(10_000, true);
    let q = Query::filtered(Filter::Eq("type".into(), Value::from("Movie")));
    group.bench_function("full_scan", |b| b.iter(|| black_box(q.execute(&scan_col)).unwrap().len()));
    group.bench_function("indexed", |b| b.iter(|| black_box(q.execute(&idx_col)).unwrap().len()));
    group.finish();
}

fn bench_count_by(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage_count_by_type");
    let scan_col = seeded_collection(20_000, false);
    let idx_col = seeded_collection(20_000, true);
    group.bench_function("scan", |b| b.iter(|| black_box(scan_col.count_by("type"))));
    group.bench_function("indexed", |b| b.iter(|| black_box(idx_col.count_by("type"))));
    group.finish();
}

fn bench_parallel_scan(c: &mut Criterion) {
    let col = seeded_collection(20_000, false);
    c.bench_function("storage_parallel_scan_20k", |b| {
        b.iter(|| {
            black_box(col.parallel_scan(|_, d| d.get("chars").and_then(Value::as_int)))
                .unwrap()
                .len()
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_insert, bench_point_read, bench_query_index_vs_scan, bench_count_by,
        bench_parallel_scan
);
criterion_main!(benches);
