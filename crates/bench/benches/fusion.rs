//! Fusion and demo-query benches — Tables III–VI.
//!
//! Times the text/structured fusion step (T6), the text-only fuse (T5), the
//! top-k most-discussed query (T4), and the entity-type histogram (T3) on a
//! prebuilt scaled system.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use datatamer_bench::{HarnessConfig, ScaledSystem};
use datatamer_core::DataTamer;

fn system() -> ScaledSystem {
    ScaledSystem::build(HarnessConfig {
        scale: 1.0 / 20_000.0, // ~887 fragments: fast yet non-trivial
        padding_sentences: 4,
        background_mentions: 4,
        ..Default::default()
    })
}

fn bench_fuse(c: &mut Criterion) {
    let sys = system();
    let records = sys.dt.structured_records().len() + sys.dt.text_show_records().len();
    let mut group = c.benchmark_group("fusion");
    group.throughput(Throughput::Elements(records as u64));
    group.bench_function("full_fuse", |b| b.iter(|| black_box(sys.dt.fuse()).len()));
    group.bench_function("text_only_fuse", |b| {
        b.iter(|| black_box(sys.dt.fuse_text_only()).len())
    });
    group.finish();
}

fn bench_lookup(c: &mut Criterion) {
    let sys = system();
    let fused = sys.dt.fuse();
    c.bench_function("fused_lookup_matilda", |b| {
        b.iter(|| black_box(DataTamer::lookup(&fused, "Matilda")).is_some())
    });
}

fn bench_topk(c: &mut Criterion) {
    let sys = system();
    c.bench_function("topk_discussed_award_winning", |b| {
        b.iter(|| black_box(sys.dt.top_discussed(10)).len())
    });
}

fn bench_histogram(c: &mut Criterion) {
    let sys = system();
    c.bench_function("entity_type_histogram", |b| {
        b.iter(|| black_box(sys.dt.entity_histogram()).len())
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_fuse, bench_lookup, bench_topk, bench_histogram
);
criterion_main!(benches);
