//! Fusion and demo-query benches — Tables III–VI — plus the
//! truth-discovery resolver sweep.
//!
//! Times the text/structured fusion step (T6), the text-only fuse (T5), the
//! top-k most-discussed query (T4), the entity-type histogram (T3) on a
//! prebuilt scaled system, and `merge_groups_with` under each built-in
//! `ValueResolver` over a conflict-heavy synthetic group set.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use datatamer_bench::{HarnessConfig, ScaledSystem};
use datatamer_core::fusion::{
    group_records, merge_groups_with, FusionPolicy, RegistryConfig, ResolverSpec,
};
use datatamer_core::DataTamer;
use datatamer_model::{Record, RecordId, SourceId, Value};

fn system() -> ScaledSystem {
    ScaledSystem::build(HarnessConfig {
        scale: 1.0 / 20_000.0, // ~887 fragments: fast yet non-trivial
        padding_sentences: 4,
        background_mentions: 4,
        ..Default::default()
    })
}

fn bench_fuse(c: &mut Criterion) {
    let sys = system();
    let records = sys.dt.structured_records().len() + sys.dt.text_show_records().len();
    let mut group = c.benchmark_group("fusion");
    group.throughput(Throughput::Elements(records as u64));
    group.bench_function("full_fuse", |b| b.iter(|| black_box(sys.dt.fuse()).len()));
    group.bench_function("text_only_fuse", |b| {
        b.iter(|| black_box(sys.dt.fuse_text_only()).len())
    });
    group.finish();
}

/// A conflict-heavy corpus for the resolver benches: `entities` shows, each
/// claimed by `sources` sources that disagree on price, status, and rating
/// in a fixed arithmetic pattern (deterministic, no RNG).
fn conflict_records(entities: usize, sources: usize) -> Vec<Record> {
    let mut records = Vec::with_capacity(entities * sources);
    for e in 0..entities {
        for s in 0..sources {
            records.push(Record::from_pairs(
                SourceId(s as u32),
                RecordId((e * sources + s) as u64),
                vec![
                    ("SHOW_NAME", Value::from(format!("Show Number{e}"))),
                    // Prices split by source parity: with 5 sources that is
                    // a 3-vs-2 disagreement per entity.
                    ("CHEAPEST_PRICE", Value::from(format!("${}", 20 + (s % 2) * 10 + e % 7))),
                    ("STATUS", Value::from(if (e + s) % 3 == 0 { "open" } else { "previews" })),
                    ("RATING", Value::from(if s % 2 == 0 { "PG" } else { "PG-13" })),
                ],
            ));
        }
    }
    records
}

/// Truth-discovery resolver throughput: the same conflict-heavy group set
/// merged under each built-in resolver as the uniform default.
fn bench_resolvers(c: &mut Criterion) {
    let records = conflict_records(400, 5);
    // Group on exact canonical names only (a >1 threshold disables fuzzy
    // attachment): the sequential "Show Number{e}" names sit well above
    // any fuzzy threshold pairwise, and one degenerate 2000-record group
    // would serialise the rayon fan-out and bench the wrong workload.
    let groups = group_records(&records, &FusionPolicy::Fuzzy { threshold: 1.01 });
    assert_eq!(groups.len(), 400, "one group per entity, five conflicting members each");
    assert!(groups.iter().all(|(_, m)| m.len() == 5));
    let registries = [
        ("broadway_policies", RegistryConfig::broadway()),
        ("majority_vote", RegistryConfig::uniform(ResolverSpec::MajorityVote)),
        (
            "source_reliability",
            RegistryConfig::uniform(ResolverSpec::SourceReliability { iterations: 5 }),
        ),
        ("latest_wins", RegistryConfig::uniform(ResolverSpec::LatestWins)),
        (
            "multi_truth",
            RegistryConfig::uniform(ResolverSpec::MultiTruth { min_support: 0.25 }),
        ),
    ];
    let mut group = c.benchmark_group("fusion_resolvers");
    group.throughput(Throughput::Elements(records.len() as u64));
    for (name, config) in registries {
        let registry = config.build();
        group.bench_function(name, |b| {
            b.iter(|| black_box(merge_groups_with(&records, &groups, &registry)).len())
        });
    }
    group.finish();
}

fn bench_lookup(c: &mut Criterion) {
    let sys = system();
    let fused = sys.dt.fuse();
    c.bench_function("fused_lookup_matilda", |b| {
        b.iter(|| black_box(DataTamer::lookup(&fused, "Matilda")).is_some())
    });
}

fn bench_topk(c: &mut Criterion) {
    let sys = system();
    c.bench_function("topk_discussed_award_winning", |b| {
        b.iter(|| black_box(sys.dt.top_discussed(10)).unwrap().len())
    });
}

fn bench_histogram(c: &mut Criterion) {
    let sys = system();
    c.bench_function("entity_type_histogram", |b| {
        b.iter(|| black_box(sys.dt.entity_histogram()).unwrap().len())
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_fuse, bench_resolvers, bench_lookup, bench_topk, bench_histogram
);
criterion_main!(benches);
