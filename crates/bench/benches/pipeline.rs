//! End-to-end pipeline bench — Figure 1's architecture, measured whole.
//!
//! Builds the complete system (generate → integrate 20 sources → ingest web
//! text → fuse → query) at two scales so the scaling shape is visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use datatamer_bench::{HarnessConfig, ScaledSystem};
use datatamer_core::config::StorageConfig;
use datatamer_core::fusion::{BlockedErConfig, GroupingStrategy};
use datatamer_core::DataTamer;
use datatamer_storage::BackendConfig;

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_end_to_end");
    group.sample_size(10);
    for &denom in &[50_000u32, 20_000] {
        let config = HarnessConfig {
            scale: 1.0 / denom as f64,
            padding_sentences: 2,
            background_mentions: 3,
            ..Default::default()
        };
        group.throughput(Throughput::Elements(config.num_fragments() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(config.num_fragments()),
            &config,
            |b, cfg| {
                b.iter(|| {
                    let sys = ScaledSystem::build(cfg.clone());
                    let fused = sys.dt.fuse();
                    black_box(DataTamer::lookup(&fused, "Matilda").is_some())
                })
            },
        );
    }
    // The same end-to-end build with consolidation routed through blocked
    // ER (blocking → prepared pair scoring → union-find) — the
    // configuration whose fusion stage actually exercises the pair-scoring
    // hot path.
    for &denom in &[50_000u32, 20_000] {
        let config = HarnessConfig {
            scale: 1.0 / denom as f64,
            padding_sentences: 2,
            background_mentions: 3,
            grouping: GroupingStrategy::BlockedEr(BlockedErConfig::default()),
            ..Default::default()
        };
        group.throughput(Throughput::Elements(config.num_fragments() as u64));
        group.bench_with_input(
            BenchmarkId::new("blocked_er", config.num_fragments()),
            &config,
            |b, cfg| {
                b.iter(|| {
                    let sys = ScaledSystem::build(cfg.clone());
                    let fused = sys.dt.fuse();
                    black_box(DataTamer::lookup(&fused, "Matilda").is_some())
                })
            },
        );
    }
    // The same end-to-end build on a file-backed store (default extent
    // cache): every collection goes out of core, so this cell prices the
    // full pipeline's disk round-trips against the in-memory cells above.
    // Each iteration builds into a brand-new numbered subdir — the timed
    // closure never deletes and never reopens an existing chain; the whole
    // tree is wiped once, untimed, after the group.
    let file_root =
        std::env::temp_dir().join(format!("dt_pipeline_bench_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&file_root);
    let mut unique = 0u64;
    for &denom in &[50_000u32, 20_000] {
        let config = HarnessConfig {
            scale: 1.0 / denom as f64,
            padding_sentences: 2,
            background_mentions: 3,
            ..Default::default()
        };
        group.throughput(Throughput::Elements(config.num_fragments() as u64));
        group.bench_with_input(
            BenchmarkId::new("file", config.num_fragments()),
            &config,
            |b, cfg| {
                b.iter(|| {
                    unique += 1;
                    let cfg = HarnessConfig {
                        storage: StorageConfig {
                            backend: BackendConfig::File {
                                dir: file_root.join(format!("it{unique}")),
                            },
                            ..Default::default()
                        },
                        ..cfg.clone()
                    };
                    let sys = ScaledSystem::build(cfg);
                    let fused = sys.dt.fuse();
                    black_box(DataTamer::lookup(&fused, "Matilda").is_some())
                })
            },
        );
    }
    group.finish();
    // Untimed teardown: leave no bench droppings behind.
    let _ = std::fs::remove_dir_all(&file_root);
}

fn bench_ingest_only(c: &mut Criterion) {
    let config = HarnessConfig {
        scale: 1.0 / 20_000.0,
        padding_sentences: 2,
        background_mentions: 3,
        ..Default::default()
    };
    let mut group = c.benchmark_group("pipeline_text_ingest");
    group.sample_size(10);
    group.throughput(Throughput::Elements(config.num_fragments() as u64));
    group.bench_function("text_only", |b| {
        b.iter(|| {
            let sys = ScaledSystem::build_text_only(config.clone());
            black_box(sys.dt.text_stats().entities)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_end_to_end, bench_ingest_only);
criterion_main!(benches);
