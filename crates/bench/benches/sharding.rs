//! Shard-coordinator benches: backend × routing × shard-count sweep.
//!
//! Measures the scatter/gather hot path — batched `insert_many` followed
//! by a full parallel scan — across the coordinator's whole configuration
//! space: both backends (in-process memory vs out-of-core file), the three
//! routing policies, and widening shard counts. Reads as: what does
//! out-of-core cost, what does keyed routing cost over round robin, and
//! how does the batch path scale with shards.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use datatamer_model::{doc, Document};
use datatamer_storage::{BackendConfig, Collection, CollectionConfig, RoutingPolicy};

const DOCS: usize = 4_000;

fn sample_docs() -> Vec<Document> {
    (0..DOCS as i64)
        .map(|i| {
            doc! {
                "show" => format!("Show Number{}", i % 97),
                "price" => 20 + (i % 80),
                "pad" => "payload ".repeat(1 + (i % 4) as usize)
            }
        })
        .collect()
}

fn routings() -> Vec<RoutingPolicy> {
    vec![
        RoutingPolicy::RoundRobin,
        RoutingPolicy::HashKey { attr: "show".into() },
        RoutingPolicy::Range { attr: "show".into() },
    ]
}

fn backend_configs() -> Vec<(&'static str, BackendConfig)> {
    let dir = std::env::temp_dir().join(format!("dt_sharding_bench_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    vec![
        ("memory", BackendConfig::Memory),
        ("file", BackendConfig::File { dir }),
    ]
}

/// One full coordinator round: build, batch-insert, scan back.
fn ingest_and_scan(config: &CollectionConfig, docs: &[Document]) -> usize {
    let col = Collection::new("bench", config.clone()).unwrap();
    col.insert_many(docs).unwrap();
    col.parallel_scan(|_, d| d.get("price").cloned()).unwrap().len()
}

fn bench_backend_routing_shards(c: &mut Criterion) {
    let docs = sample_docs();
    let mut group = c.benchmark_group("sharding");
    group.sample_size(10);
    group.throughput(Throughput::Elements(DOCS as u64));
    // Each file-backed iteration writes into a brand-new numbered subdir:
    // the timed closure never deletes anything (rm -rf of the previous
    // chain would pollute the file-vs-memory comparison) and never reopens
    // an existing chain (which would accrete extents across samples). The
    // whole tree is wiped once, untimed, after the group.
    let mut unique = 0u64;
    for (backend_name, backend) in backend_configs() {
        for routing in routings() {
            for &shards in &[2usize, 8] {
                let id = format!("{backend_name}_{}_{shards}shards", routing.name());
                let backend = match &backend {
                    BackendConfig::Memory => BackendConfig::Memory,
                    BackendConfig::File { dir } => {
                        BackendConfig::File { dir: dir.join(&id) }
                    }
                };
                let config = CollectionConfig {
                    extent_size: 256 * 1024,
                    shards,
                    backend,
                    routing: routing.clone(),
                    ..Default::default()
                };
                group.bench_with_input(
                    BenchmarkId::from_parameter(&id),
                    &config,
                    |b, cfg| {
                        b.iter(|| {
                            let cfg = match &cfg.backend {
                                BackendConfig::File { dir } => {
                                    unique += 1;
                                    CollectionConfig {
                                        backend: BackendConfig::File {
                                            dir: dir.join(format!("it{unique}")),
                                        },
                                        ..cfg.clone()
                                    }
                                }
                                _ => cfg.clone(),
                            };
                            black_box(ingest_and_scan(&cfg, &docs))
                        })
                    },
                );
            }
        }
    }
    group.finish();
    // Untimed teardown: leave no bench droppings behind.
    for (_, backend) in backend_configs() {
        if let BackendConfig::File { dir } = backend {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

criterion_group!(benches, bench_backend_routing_shards);
criterion_main!(benches);
