//! Blocking ablation: candidate generation across bucket-size
//! distributions and oversize fallbacks.
//!
//! The interesting axis is the bucket-size distribution. Uniform small
//! buckets are blocking's best case; a Zipf-like head token funnels most
//! records into one giant bucket, which is exactly where the oversize
//! fallback decides both cost (quadratic vs windowed) and recall
//! (truncation cliff vs progressive recovery). The progressive-vs-truncate
//! pair over the same corpus measures the price of recovering beyond-cap
//! recall.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use datatamer_entity::{Blocker, BlockingStrategy, OversizeFallback};
use datatamer_model::{Record, RecordId, SourceId, Value};

const N: usize = 2000;

fn record(i: usize, name: String) -> Record {
    Record::from_pairs(
        SourceId(0),
        RecordId(i as u64),
        vec![("name", Value::from(name))],
    )
}

/// Uniform distribution: ~every 7 records share a group token, no bucket
/// anywhere near the cap.
fn uniform_corpus() -> Vec<Record> {
    (0..N)
        .map(|i| record(i, format!("unique{i} group{}", i % (N / 7))))
        .collect()
}

/// Zipf-like head: every record shares one stopword-like token ("show"),
/// funnelling all of them into a single oversized bucket, plus a light
/// tail of small buckets.
fn zipf_corpus() -> Vec<Record> {
    (0..N)
        .map(|i| record(i, format!("show tail{} unique{i:04}", i % 50)))
        .collect()
}

fn bench_blocking(c: &mut Criterion) {
    let uniform = uniform_corpus();
    let zipf = zipf_corpus();
    let mut group = c.benchmark_group("blocking");
    group.sample_size(15);
    group.throughput(Throughput::Elements(N as u64));

    group.bench_function("token_uniform", |b| {
        let blocker = Blocker::new("name", BlockingStrategy::Token);
        b.iter(|| black_box(blocker.candidates_with_report(&uniform).pairs.len()))
    });
    group.bench_function("token_zipf_progressive", |b| {
        let blocker = Blocker::new("name", BlockingStrategy::Token);
        b.iter(|| black_box(blocker.candidates_with_report(&zipf).pairs.len()))
    });
    group.bench_function("token_zipf_truncate", |b| {
        let blocker = Blocker::new("name", BlockingStrategy::Token)
            .with_fallback(OversizeFallback::Truncate);
        b.iter(|| black_box(blocker.candidates_with_report(&zipf).pairs.len()))
    });
    group.bench_function("sorted_neighborhood_zipf", |b| {
        let blocker =
            Blocker::new("name", BlockingStrategy::SortedNeighborhood { window: 16 });
        b.iter(|| black_box(blocker.candidates_with_report(&zipf).pairs.len()))
    });
    group.bench_function("minhash_lsh_zipf", |b| {
        let blocker =
            Blocker::new("name", BlockingStrategy::MinHashLsh { bands: 8, rows: 4 });
        b.iter(|| black_box(blocker.candidates_with_report(&zipf).pairs.len()))
    });
    group.finish();
}

criterion_group!(benches, bench_blocking);
criterion_main!(benches);
