//! Text-side benches — experiment M2: the "performance results of the
//! machine learning text data cleaning and pre-processing extension".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use datatamer_bench::HarnessConfig;
use datatamer_clean::TextCleaner;
use datatamer_corpus::webtext::WebTextCorpus;
use datatamer_text::{scan, tokenize, DomainParser};

fn corpus(fragments: usize) -> WebTextCorpus {
    let cfg = HarnessConfig {
        scale: fragments as f64 / 17_731_744.0,
        padding_sentences: 4,
        background_mentions: 4,
        ..Default::default()
    };
    WebTextCorpus::generate(&cfg.webtext_config())
}

fn bench_tokenize(c: &mut Criterion) {
    let corp = corpus(500);
    let total_bytes: usize = corp.fragments.iter().map(|f| f.text.len()).sum();
    let mut group = c.benchmark_group("text_tokenize");
    group.throughput(Throughput::Bytes(total_bytes as u64));
    group.bench_function("500_fragments", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for f in &corp.fragments {
                n += tokenize::tokenize(&f.text).len();
            }
            black_box(n)
        })
    });
    group.finish();
}

fn bench_scanners(c: &mut Criterion) {
    let corp = corpus(500);
    c.bench_function("text_scan_all_500", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for f in &corp.fragments {
                n += scan::scan_all(&f.text).len();
            }
            black_box(n)
        })
    });
}

fn bench_ml_cleaner(c: &mut Criterion) {
    let corp = corpus(500);
    let cleaner = TextCleaner::with_builtin_seeds();
    let mut group = c.benchmark_group("text_ml_cleaner");
    group.throughput(Throughput::Elements(corp.fragments.len() as u64));
    group.bench_function("classify_500", |b| {
        b.iter(|| {
            let mut junk = 0usize;
            for f in &corp.fragments {
                junk += usize::from(cleaner.is_junk(&f.text));
            }
            black_box(junk)
        })
    });
    group.finish();
}

fn bench_domain_parser(c: &mut Criterion) {
    let mut group = c.benchmark_group("text_parse_throughput");
    for &n in &[200usize, 1_000] {
        let corp = corpus(n);
        let parser = DomainParser::with_gazetteer(corp.gazetteer.clone());
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut mentions = 0usize;
                for f in &corp.fragments {
                    mentions += parser.parse(&f.text).mentions.len();
                }
                black_box(mentions)
            })
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_tokenize, bench_scanners, bench_ml_cleaner, bench_domain_parser
);
criterion_main!(benches);
