//! The attribute matcher ensemble (Data Tamer's "experts").
//!
//! Each matcher scores a candidate `(source attribute, global attribute)`
//! pair in `[0, 1]` from a different signal; the composite combines them.
//! The per-pair scores these produce are the "heuristic matching scores" the
//! paper's Figs 2–3 display next to each suggested match target.

use std::collections::HashMap;

use datatamer_model::{AttributeDef, LexicalType};
use datatamer_sim as sim;

use crate::global::GlobalAttribute;
use crate::synonyms::SynonymDict;

/// A matcher scores source-vs-global attribute pairs.
pub trait AttributeMatcher {
    /// Stable matcher name (for score breakdowns).
    fn name(&self) -> &'static str;
    /// Score in `[0, 1]`.
    fn score(&self, source: &AttributeDef, global: &GlobalAttribute) -> f64;
}

/// Name-based matcher: Jaro-Winkler on the raw names blended with
/// synonym-aware token-set similarity.
#[derive(Debug, Clone)]
pub struct NameMatcher {
    synonyms: SynonymDict,
}

impl NameMatcher {
    /// With a synonym dictionary.
    pub fn new(synonyms: SynonymDict) -> Self {
        NameMatcher { synonyms }
    }
}

impl AttributeMatcher for NameMatcher {
    fn name(&self) -> &'static str {
        "name"
    }

    fn score(&self, source: &AttributeDef, global: &GlobalAttribute) -> f64 {
        let a = source.name.to_lowercase();
        let b = global.name.to_lowercase();
        let jw = sim::jaro_winkler(&a, &b);
        let ta = sim::tokenize(&source.name);
        let tb = sim::tokenize(&global.name);
        let syn = self.synonyms.token_similarity(&ta, &tb);
        jw.max(syn) * 0.85 + jw.min(syn) * 0.15
    }
}

/// Value-overlap matcher: weighted Jaccard between sampled value multisets.
#[derive(Debug, Clone, Copy, Default)]
pub struct ValueOverlapMatcher;

impl AttributeMatcher for ValueOverlapMatcher {
    fn name(&self) -> &'static str {
        "value_overlap"
    }

    fn score(&self, source: &AttributeDef, global: &GlobalAttribute) -> f64 {
        let to_map = |attr: &datatamer_model::AttributeProfile| -> HashMap<String, f64> {
            attr.sample_values()
                .iter()
                .map(|v| (v.to_lowercase(), attr.sample_frequency(v) as f64))
                .collect()
        };
        let a = to_map(&source.profile);
        let b = to_map(&global.profile);
        if a.is_empty() || b.is_empty() {
            return 0.0;
        }
        sim::weighted_jaccard(&a, &b)
    }
}

/// Distribution matcher: lexical-type agreement plus (for numeric columns)
/// numeric-shape similarity and (for text) length-profile similarity.
#[derive(Debug, Clone, Copy, Default)]
pub struct DistributionMatcher;

impl AttributeMatcher for DistributionMatcher {
    fn name(&self) -> &'static str {
        "distribution"
    }

    fn score(&self, source: &AttributeDef, global: &GlobalAttribute) -> f64 {
        let ta = source.profile.dominant_type();
        let tb = global.profile.dominant_type();
        if ta == LexicalType::Null || tb == LexicalType::Null {
            return 0.0;
        }
        let type_score = if ta == tb {
            1.0
        } else if ta.is_numeric() == tb.is_numeric() {
            0.4
        } else {
            0.0
        };
        let shape_score = match (source.profile.numeric_stats(), global.profile.numeric_stats()) {
            (Some(a), Some(b)) => {
                sim::stats_similarity(a.mean, a.std, a.min, a.max, b.mean, b.std, b.min, b.max)
            }
            (None, None) => {
                sim::relative_diff_similarity(source.profile.mean_len(), global.profile.mean_len())
            }
            _ => 0.0,
        };
        0.55 * type_score + 0.45 * shape_score
    }
}

/// TF-IDF content matcher: cosine between the token bags of the sampled
/// values, with IDF fitted over all attributes seen so far.
#[derive(Debug, Clone, Default)]
pub struct TfIdfMatcher {
    model: sim::CosineModel,
}

impl TfIdfMatcher {
    /// Fit IDF weights over attribute value-bags (one "document" per
    /// attribute). Called by the integrator whenever the global schema grows.
    pub fn fit(attribute_value_texts: &[String]) -> Self {
        TfIdfMatcher { model: sim::CosineModel::fit_texts(attribute_value_texts) }
    }
}

/// Concatenated sample values as one text per attribute.
pub fn value_bag(profile: &datatamer_model::AttributeProfile) -> String {
    profile.sample_values().join(" ")
}

impl AttributeMatcher for TfIdfMatcher {
    fn name(&self) -> &'static str {
        "tfidf"
    }

    fn score(&self, source: &AttributeDef, global: &GlobalAttribute) -> f64 {
        let a = value_bag(&source.profile);
        let b = value_bag(&global.profile);
        if a.is_empty() || b.is_empty() {
            return 0.0;
        }
        self.model.similarity(&a, &b)
    }
}

/// Weights for the composite matcher.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatcherWeights {
    pub name: f64,
    pub value_overlap: f64,
    pub distribution: f64,
    pub tfidf: f64,
}

impl Default for MatcherWeights {
    fn default() -> Self {
        MatcherWeights { name: 0.42, value_overlap: 0.22, distribution: 0.16, tfidf: 0.20 }
    }
}

impl MatcherWeights {
    fn total(&self) -> f64 {
        self.name + self.value_overlap + self.distribution + self.tfidf
    }
}

/// The weighted ensemble of all matchers.
pub struct CompositeMatcher {
    name_matcher: NameMatcher,
    value_matcher: ValueOverlapMatcher,
    dist_matcher: DistributionMatcher,
    tfidf_matcher: TfIdfMatcher,
    weights: MatcherWeights,
}

impl CompositeMatcher {
    /// Build with default weights and the Broadway synonym dictionary.
    pub fn broadway() -> Self {
        Self::new(SynonymDict::broadway(), MatcherWeights::default())
    }

    /// Build with explicit pieces.
    pub fn new(synonyms: SynonymDict, weights: MatcherWeights) -> Self {
        assert!(weights.total() > 0.0, "weights must not all be zero");
        CompositeMatcher {
            name_matcher: NameMatcher::new(synonyms),
            value_matcher: ValueOverlapMatcher,
            dist_matcher: DistributionMatcher,
            tfidf_matcher: TfIdfMatcher::default(),
            weights,
        }
    }

    /// Refresh the TF-IDF model against the current global schema's value
    /// bags (IDF drifts as the schema grows bottom-up).
    pub fn refit_tfidf(&mut self, global: &crate::global::GlobalSchema) {
        let bags: Vec<String> = global.iter().map(|a| value_bag(&a.profile)).collect();
        self.tfidf_matcher = TfIdfMatcher::fit(&bags);
    }

    /// The combined score.
    ///
    /// A pair is credible when **either** the names agree strongly (synonym
    /// dictionaries, abbreviations) **or** the contents overlap strongly
    /// (shared value domains) — averaging the two starves both signals:
    /// price columns have near-zero value overlap across sources even when
    /// the names are exact synonyms. The composite therefore takes the max
    /// of a name-led blend and a content-led blend, each seasoned with the
    /// distribution signal, and then folds in the configured weights as a
    /// tilt between the two blends.
    pub fn score(&self, source: &AttributeDef, global: &GlobalAttribute) -> f64 {
        let name = self.name_matcher.score(source, global);
        let value = self.value_matcher.score(source, global);
        let dist = self.dist_matcher.score(source, global);
        let tfidf = self.tfidf_matcher.score(source, global);
        let name_led = 0.80 * name + 0.20 * dist;
        let content_led = 0.45 * value + 0.30 * tfidf + 0.25 * dist;
        let w = &self.weights;
        let name_share = (w.name + w.distribution / 2.0) / w.total();
        let content_share = 1.0 - name_share;
        // The dominant blend carries the score; the weaker blend
        // contributes proportionally to its configured share.
        if name_led >= content_led {
            name_led.max(name_led * name_share + content_led * content_share)
        } else {
            content_led.max(content_led * content_share + name_led * name_share)
        }
    }

    /// Per-matcher score breakdown `(matcher name, score)`.
    pub fn breakdown(&self, source: &AttributeDef, global: &GlobalAttribute) -> Vec<(&'static str, f64)> {
        vec![
            (self.name_matcher.name(), self.name_matcher.score(source, global)),
            (self.value_matcher.name(), self.value_matcher.score(source, global)),
            (self.dist_matcher.name(), self.dist_matcher.score(source, global)),
            (self.tfidf_matcher.name(), self.tfidf_matcher.score(source, global)),
        ]
    }

    /// The active weights.
    pub fn weights(&self) -> MatcherWeights {
        self.weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global::GlobalSchema;
    use datatamer_model::{Record, RecordId, SourceId, SourceSchema, Value};

    fn attr(name: &str, values: &[&str]) -> AttributeDef {
        let sid = SourceId(1);
        let records: Vec<Record> = values
            .iter()
            .enumerate()
            .map(|(i, v)| Record::from_pairs(sid, RecordId(i as u64), vec![(name, Value::from(*v))]))
            .collect();
        let schema = SourceSchema::profile_records(sid, "s", &records);
        schema.attributes[0].clone()
    }

    fn globalize(a: &AttributeDef) -> GlobalAttribute {
        let mut g = GlobalSchema::new();
        let id = g.add_attribute(SourceId(0), a);
        g.get(id).unwrap().clone()
    }

    #[test]
    fn name_matcher_uses_synonyms() {
        let m = NameMatcher::new(SynonymDict::broadway());
        let price = attr("price", &["$27"]);
        let cost = globalize(&attr("cost", &["$30"]));
        let venue = globalize(&attr("venue", &["Shubert"]));
        assert!(m.score(&price, &cost) > 0.8, "synonyms must score high");
        assert!(m.score(&price, &venue) < 0.5);
        let exact = globalize(&attr("price", &["$1"]));
        assert!(m.score(&price, &exact) > 0.99);
    }

    #[test]
    fn value_overlap_detects_shared_domains() {
        let m = ValueOverlapMatcher;
        let a = attr("show", &["Matilda", "Wicked", "Annie", "Pippin"]);
        let b = globalize(&attr("title", &["Matilda", "Wicked", "Chicago", "Annie"]));
        let c = globalize(&attr("venue", &["Shubert", "Gershwin", "Palace"]));
        assert!(m.score(&a, &b) > 0.4, "shared shows overlap");
        assert_eq!(m.score(&a, &c), 0.0, "disjoint domains");
    }

    #[test]
    fn distribution_matcher_separates_types() {
        let m = DistributionMatcher;
        let price_a = attr("p1", &["$20", "$45", "$99"]);
        let price_b = globalize(&attr("p2", &["$25", "$50", "$110"]));
        let text = globalize(&attr("desc", &["a lovely show", "great fun tonight"]));
        assert!(m.score(&price_a, &price_b) > 0.6);
        assert!(m.score(&price_a, &text) < 0.3);
        let empty = AttributeDef {
            name: "empty".into(),
            profile: datatamer_model::AttributeProfile::default(),
        };
        assert_eq!(m.score(&empty, &price_b), 0.0);
    }

    #[test]
    fn distribution_matcher_separates_ranges() {
        let m = DistributionMatcher;
        // Same lexical type (integer) but disjoint ranges: years vs seats.
        let years = attr("year", &["2010", "2011", "2012", "2013"]);
        let seats = globalize(&attr("seats", &["400", "900", "1500", "1800"]));
        let years2 = globalize(&attr("yr", &["2009", "2012", "2014"]));
        assert!(m.score(&years, &years2) > m.score(&years, &seats));
    }

    #[test]
    fn tfidf_matcher_scores_content() {
        let a = attr("addr1", &["225 W. 44th St", "219 W. 49th St"]);
        let b = globalize(&attr("addr2", &["225 W. 44th St", "1634 Broadway"]));
        let c = globalize(&attr("names", &["Matilda", "Annie"]));
        let bags = vec![
            value_bag(&a.profile),
            value_bag(&b.profile),
            value_bag(&c.profile),
        ];
        let m = TfIdfMatcher::fit(&bags);
        assert!(m.score(&a, &b) > m.score(&a, &c));
    }

    #[test]
    fn composite_prefers_true_match() {
        let mut composite = CompositeMatcher::broadway();
        let mut g = GlobalSchema::new();
        let show = attr("show_name", &["Matilda", "Wicked", "Annie"]);
        let price = attr("cheapest_price", &["$27", "$45", "$99"]);
        g.add_attribute(SourceId(0), &show);
        g.add_attribute(SourceId(0), &price);
        composite.refit_tfidf(&g);
        let incoming_title = attr("title", &["Matilda", "Pippin", "Wicked"]);
        let g_show = g.by_name("show_name").unwrap();
        let g_price = g.by_name("cheapest_price").unwrap();
        let to_show = composite.score(&incoming_title, g_show);
        let to_price = composite.score(&incoming_title, g_price);
        assert!(to_show > to_price, "title→show_name must beat title→price ({to_show} vs {to_price})");
        assert!(to_show > 0.5);
        let breakdown = composite.breakdown(&incoming_title, g_show);
        assert_eq!(breakdown.len(), 4);
        assert!(breakdown.iter().all(|(_, s)| (0.0..=1.0).contains(s)));
    }

    #[test]
    #[should_panic(expected = "weights")]
    fn zero_weights_panic() {
        CompositeMatcher::new(
            SynonymDict::new(),
            MatcherWeights { name: 0.0, value_overlap: 0.0, distribution: 0.0, tfidf: 0.0 },
        );
    }
}
