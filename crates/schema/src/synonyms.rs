//! Domain synonym dictionary for attribute-name matching.
//!
//! Attribute names across scraped sources rarely share spellings ("price" /
//! "cost" / "fare"); a synonym dictionary lets the name matcher credit these
//! as matches. Sets are symmetric and transitive within a group.

use std::collections::HashMap;

/// A token-level synonym dictionary (union-find-free: small fixed groups).
#[derive(Debug, Clone, Default)]
pub struct SynonymDict {
    /// token → group id
    groups: HashMap<String, u32>,
    next_group: u32,
}

impl SynonymDict {
    /// An empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// The built-in dictionary for the Broadway / web-text domain.
    pub fn broadway() -> Self {
        let mut d = SynonymDict::new();
        d.add_group(&["show", "title", "production", "name", "movie"]);
        d.add_group(&["theater", "theatre", "venue", "location", "house", "hall"]);
        d.add_group(&["performance", "schedule", "showtimes", "times", "curtain"]);
        d.add_group(&["price", "cost", "fare", "ticket", "fee"]);
        d.add_group(&["cheapest", "lowest", "minimum", "from"]);
        d.add_group(&["first", "opening", "premiere", "debut"]);
        d.add_group(&["discount", "deal", "savings", "promo"]);
        d.add_group(&["city", "market", "town"]);
        d.add_group(&["runtime", "duration", "length"]);
        d.add_group(&["rating", "stars", "score"]);
        d.add_group(&["capacity", "seats", "seating"]);
        d.add_group(&["phone", "telephone"]);
        d.add_group(&["website", "url", "link", "web"]);
        d.add_group(&["date", "day"]);
        d.add_group(&["feed", "fragment", "text", "excerpt"]);
        d
    }

    /// Register a synonym group (lowercased).
    pub fn add_group<S: AsRef<str>>(&mut self, tokens: &[S]) {
        // If any token already belongs to a group, merge into that group.
        let existing = tokens
            .iter()
            .find_map(|t| self.groups.get(&t.as_ref().to_lowercase()).copied());
        let gid = existing.unwrap_or_else(|| {
            let g = self.next_group;
            self.next_group += 1;
            g
        });
        for t in tokens {
            self.groups.insert(t.as_ref().to_lowercase(), gid);
        }
    }

    /// True when two tokens are the same or registered synonyms.
    pub fn are_synonyms(&self, a: &str, b: &str) -> bool {
        let (a, b) = (a.to_lowercase(), b.to_lowercase());
        if a == b {
            return true;
        }
        match (self.groups.get(&a), self.groups.get(&b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// Token-set similarity with synonym credit: greedy best-match of each
    /// token of `a` against tokens of `b` (1.0 exact/synonym), normalised
    /// with a containment bias — `"cost"` fully contained in
    /// `"cheapest_price"`'s synonym set should score high even though the
    /// token counts differ (attribute names are routinely abbreviated).
    pub fn token_similarity(&self, a_tokens: &[String], b_tokens: &[String]) -> f64 {
        if a_tokens.is_empty() && b_tokens.is_empty() {
            return 1.0;
        }
        if a_tokens.is_empty() || b_tokens.is_empty() {
            return 0.0;
        }
        let mut used = vec![false; b_tokens.len()];
        let mut matched = 0usize;
        for ta in a_tokens {
            if let Some(pos) = b_tokens
                .iter()
                .enumerate()
                .position(|(j, tb)| !used[j] && self.are_synonyms(ta, tb))
            {
                used[pos] = true;
                matched += 1;
            }
        }
        let small = a_tokens.len().min(b_tokens.len()) as f64;
        let large = a_tokens.len().max(b_tokens.len()) as f64;
        0.75 * (matched as f64 / small) + 0.25 * (matched as f64 / large)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_groups_work() {
        let d = SynonymDict::broadway();
        assert!(d.are_synonyms("price", "cost"));
        assert!(d.are_synonyms("theater", "venue"));
        assert!(d.are_synonyms("Theatre", "THEATER"), "case-insensitive");
        assert!(!d.are_synonyms("price", "theater"));
        assert!(d.are_synonyms("xyzzy", "xyzzy"), "identity without registration");
        assert!(!d.are_synonyms("xyzzy", "plugh"));
    }

    #[test]
    fn add_group_merges_overlapping() {
        let mut d = SynonymDict::new();
        d.add_group(&["a", "b"]);
        d.add_group(&["b", "c"]);
        assert!(d.are_synonyms("a", "c"), "transitive through shared token");
    }

    #[test]
    fn token_similarity_counts_synonym_matches() {
        let d = SynonymDict::broadway();
        let toks = |s: &str| -> Vec<String> {
            s.split_whitespace().map(str::to_owned).collect()
        };
        assert_eq!(d.token_similarity(&toks("ticket price"), &toks("price ticket")), 1.0);
        assert_eq!(d.token_similarity(&toks("cheapest price"), &toks("lowest cost")), 1.0);
        // "show" matches "title" (synonyms); "name" has no partner left.
        // Containment bias: 0.75·(1/1) + 0.25·(1/2) = 0.875.
        assert!((d.token_similarity(&toks("show name"), &toks("title")) - 0.875).abs() < 1e-9);
        // Full containment of the abbreviation scores high.
        assert!(d.token_similarity(&toks("cost"), &toks("cheapest price")) > 0.85);
        assert_eq!(d.token_similarity(&toks("price"), &toks("venue")), 0.0);
        assert_eq!(d.token_similarity(&[], &[]), 1.0);
        assert_eq!(d.token_similarity(&toks("x"), &[]), 0.0);
    }
}
