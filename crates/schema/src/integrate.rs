//! The schema-integration loop.
//!
//! For each attribute of an incoming source: score against every global
//! attribute, then
//!
//! * score ≥ `accept_threshold` → auto-accept (map + merge profiles);
//! * `escalate_threshold` ≤ score < `accept_threshold` → ask the resolver
//!   (the expert-sourcing hook; the paper's "user can pick the acceptance
//!   threshold ... below which the suggested matching targets require expert
//!   assessment");
//! * score < `escalate_threshold` → the Fig 2 "no counterpart" alert; the
//!   attribute is added to the global schema as new.

use datatamer_model::{AttributeDef, SourceSchema};

use crate::global::GlobalSchema;
use crate::matchers::CompositeMatcher;
use crate::suggestion::{Decision, MatchCandidate, MatchSuggestion};

/// Integration thresholds and knobs.
#[derive(Debug, Clone)]
pub struct IntegrationConfig {
    /// Scores at or above this map automatically.
    pub accept_threshold: f64,
    /// Scores at or above this (but below accept) go to the resolver.
    pub escalate_threshold: f64,
    /// Maximum candidates listed per suggestion (the Fig 2 drop-down).
    pub max_candidates: usize,
}

impl Default for IntegrationConfig {
    fn default() -> Self {
        IntegrationConfig { accept_threshold: 0.8, escalate_threshold: 0.55, max_candidates: 5 }
    }
}

/// Outcome summary of integrating one source.
#[derive(Debug, Clone)]
pub struct IntegrationReport {
    /// The source's name.
    pub source_name: String,
    /// Per-attribute suggestions with decisions, in source order.
    pub suggestions: Vec<MatchSuggestion>,
}

impl IntegrationReport {
    /// Count of automatic mappings.
    pub fn auto_accepted(&self) -> usize {
        self.suggestions
            .iter()
            .filter(|s| matches!(s.decision, Decision::AutoAccept { .. }))
            .count()
    }

    /// Count of decisions that needed a human.
    pub fn human_interventions(&self) -> usize {
        self.suggestions.iter().filter(|s| s.decision.required_human()).count()
    }

    /// Count of new global attributes created.
    pub fn new_attributes(&self) -> usize {
        self.suggestions
            .iter()
            .filter(|s| {
                matches!(s.decision, Decision::NewAttribute | Decision::ExpertNewAttribute)
            })
            .count()
    }

    /// Fraction of attributes that resolved without a human.
    pub fn automation_rate(&self) -> f64 {
        if self.suggestions.is_empty() {
            return 1.0;
        }
        1.0 - self.human_interventions() as f64 / self.suggestions.len() as f64
    }
}

/// A resolver answers escalated suggestions (the expert-sourcing hook).
///
/// Receives the source attribute and its ranked candidates; returns the
/// decision. The trivial resolver accepts the best candidate.
pub trait EscalationResolver {
    /// Decide an escalated suggestion.
    fn resolve(&mut self, source_attr: &AttributeDef, candidates: &[MatchCandidate]) -> Decision;
}

/// Accepts the top candidate of every escalation (threshold-only operation;
/// what you get with no humans attached).
#[derive(Debug, Default, Clone, Copy)]
pub struct AcceptBest;

impl EscalationResolver for AcceptBest {
    fn resolve(&mut self, _attr: &AttributeDef, candidates: &[MatchCandidate]) -> Decision {
        match candidates.first() {
            Some(best) => Decision::ExpertAccept { attr: best.attr, score: best.score },
            None => Decision::ExpertNewAttribute,
        }
    }
}

/// The integrator: owns the growing global schema and the matcher ensemble.
pub struct SchemaIntegrator {
    global: GlobalSchema,
    matcher: CompositeMatcher,
    config: IntegrationConfig,
}

impl SchemaIntegrator {
    /// Start with an empty global schema (Fig 2's initial state).
    pub fn new(matcher: CompositeMatcher, config: IntegrationConfig) -> Self {
        assert!(
            config.escalate_threshold <= config.accept_threshold,
            "escalate threshold must not exceed accept threshold"
        );
        SchemaIntegrator { global: GlobalSchema::new(), matcher, config }
    }

    /// Default Broadway-domain integrator.
    pub fn broadway() -> Self {
        Self::new(CompositeMatcher::broadway(), IntegrationConfig::default())
    }

    /// The current global schema.
    pub fn global(&self) -> &GlobalSchema {
        &self.global
    }

    /// Mutable access (used by curation steps like display renames).
    pub fn global_mut(&mut self) -> &mut GlobalSchema {
        &mut self.global
    }

    /// The active configuration.
    pub fn config(&self) -> &IntegrationConfig {
        &self.config
    }

    /// Integrate a source with thresholds only (escalations auto-accept the
    /// best candidate).
    pub fn integrate(&mut self, source: &SourceSchema) -> IntegrationReport {
        self.integrate_with(source, &mut AcceptBest)
    }

    /// Integrate a source, routing escalations through `resolver`.
    pub fn integrate_with(
        &mut self,
        source: &SourceSchema,
        resolver: &mut dyn EscalationResolver,
    ) -> IntegrationReport {
        // Refit IDF over the current schema before matching this source.
        self.matcher.refit_tfidf(&self.global);
        let mut suggestions = Vec::with_capacity(source.attributes.len());
        // Attributes of one source are distinct by construction: a global
        // attribute already claimed by this source is excluded from the
        // candidates of its remaining attributes (prevents a source's own
        // columns from collapsing onto each other).
        let mut claimed: Vec<datatamer_model::AttrId> = Vec::new();
        for attr in &source.attributes {
            let mut candidates: Vec<MatchCandidate> = self
                .global
                .iter()
                .filter(|g| !claimed.contains(&g.id))
                .map(|g| MatchCandidate {
                    attr: g.id,
                    name: g.name.clone(),
                    score: self.matcher.score(attr, g),
                })
                .collect();
            candidates.sort_by(|a, b| {
                b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal)
            });
            candidates.truncate(self.config.max_candidates);

            let best = candidates.first().map(|c| c.score).unwrap_or(0.0);
            let no_counterpart_alert = best < self.config.escalate_threshold;
            let decision = if best >= self.config.accept_threshold {
                let c = &candidates[0];
                Decision::AutoAccept { attr: c.attr, score: c.score }
            } else if best >= self.config.escalate_threshold {
                resolver.resolve(attr, &candidates)
            } else {
                Decision::NewAttribute
            };

            // Apply the decision to the global schema.
            match &decision {
                Decision::AutoAccept { attr: id, .. } | Decision::ExpertAccept { attr: id, .. } => {
                    self.global.map_attribute(*id, source.source, attr);
                    claimed.push(*id);
                }
                Decision::NewAttribute | Decision::ExpertNewAttribute => {
                    let id = self.global.add_attribute(source.source, attr);
                    claimed.push(id);
                }
                Decision::Ignore => {}
            }

            suggestions.push(MatchSuggestion {
                source_attr: attr.name.clone(),
                candidates,
                no_counterpart_alert,
                decision,
            });
        }
        IntegrationReport { source_name: source.name.clone(), suggestions }
    }

    /// Score one source against the current schema *without* mutating it
    /// (powers threshold sweeps: same matching, different thresholds).
    pub fn dry_run(&mut self, source: &SourceSchema) -> Vec<(String, Vec<MatchCandidate>)> {
        self.matcher.refit_tfidf(&self.global);
        source
            .attributes
            .iter()
            .map(|attr| {
                let mut candidates: Vec<MatchCandidate> = self
                    .global
                    .iter()
                    .map(|g| MatchCandidate {
                        attr: g.id,
                        name: g.name.clone(),
                        score: self.matcher.score(attr, g),
                    })
                    .collect();
                candidates.sort_by(|a, b| {
                    b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal)
                });
                candidates.truncate(self.config.max_candidates);
                (attr.name.clone(), candidates)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datatamer_model::{Record, RecordId, SourceId, Value};

    fn source(id: u32, name: &str, rows: Vec<Vec<(&str, &str)>>) -> SourceSchema {
        let sid = SourceId(id);
        let records: Vec<Record> = rows
            .into_iter()
            .enumerate()
            .map(|(i, fields)| {
                Record::from_pairs(
                    sid,
                    RecordId(i as u64),
                    fields.into_iter().map(|(k, v)| (k, Value::from(v))).collect(),
                )
            })
            .collect();
        SourceSchema::profile_records(sid, name, &records)
    }

    fn shows_source(id: u32, name: &str, show_attr: &str, price_attr: &str) -> SourceSchema {
        source(
            id,
            name,
            vec![
                vec![(show_attr, "Matilda"), (price_attr, "$27")],
                vec![(show_attr, "Wicked"), (price_attr, "$99")],
                vec![(show_attr, "Annie"), (price_attr, "$45")],
            ],
        )
    }

    #[test]
    fn first_source_seeds_schema_with_alerts() {
        let mut integ = SchemaIntegrator::broadway();
        let report = integ.integrate(&shows_source(1, "s1", "show_name", "cheapest_price"));
        assert_eq!(integ.global().len(), 2);
        assert_eq!(report.new_attributes(), 2);
        assert!(report.suggestions.iter().all(|s| s.no_counterpart_alert));
        assert_eq!(report.auto_accepted(), 0);
        assert_eq!(report.source_name, "s1");
    }

    #[test]
    fn second_source_auto_maps_synonyms() {
        let mut integ = SchemaIntegrator::broadway();
        integ.integrate(&shows_source(1, "s1", "show_name", "cheapest_price"));
        let report = integ.integrate(&shows_source(2, "s2", "title", "cost"));
        assert_eq!(
            integ.global().len(),
            2,
            "synonym attributes must map, not proliferate: {:?}",
            integ.global().attribute_names()
        );
        assert_eq!(report.auto_accepted() + report.human_interventions(), 2);
        // Provenance grew.
        let show = integ.global().by_name("show_name").unwrap();
        assert_eq!(show.source_count(), 2);
    }

    #[test]
    fn unrelated_attribute_becomes_new() {
        let mut integ = SchemaIntegrator::broadway();
        integ.integrate(&shows_source(1, "s1", "show_name", "cheapest_price"));
        let s2 = source(
            2,
            "s2",
            vec![
                vec![("title", "Matilda"), ("box_office_phone", "(212) 555-0101")],
                vec![("title", "Pippin"), ("box_office_phone", "(212) 555-0188")],
            ],
        );
        let report = integ.integrate(&s2);
        assert_eq!(integ.global().len(), 3);
        let phone_suggestion = report
            .suggestions
            .iter()
            .find(|s| s.source_attr == "box_office_phone")
            .unwrap();
        assert!(matches!(phone_suggestion.decision, Decision::NewAttribute));
    }

    #[test]
    fn escalation_goes_to_resolver() {
        struct CountingResolver(usize);
        impl EscalationResolver for CountingResolver {
            fn resolve(&mut self, _a: &AttributeDef, c: &[MatchCandidate]) -> Decision {
                self.0 += 1;
                Decision::ExpertAccept { attr: c[0].attr, score: c[0].score }
            }
        }
        let mut integ = SchemaIntegrator::new(
            CompositeMatcher::broadway(),
            // Wide escalation band: everything 0.2..0.99 asks the resolver.
            IntegrationConfig { accept_threshold: 0.99, escalate_threshold: 0.2, max_candidates: 3 },
        );
        integ.integrate(&shows_source(1, "s1", "show_name", "cheapest_price"));
        let mut resolver = CountingResolver(0);
        // Disjoint values: content overlap cannot reach the 0.99 threshold,
        // so the synonym-name evidence lands in the escalation band.
        let s2 = source(
            2,
            "s2",
            vec![
                vec![("title", "Pippin"), ("cost", "$60")],
                vec![("title", "Once"), ("cost", "$75")],
            ],
        );
        let report = integ.integrate_with(&s2, &mut resolver);
        assert!(resolver.0 > 0, "resolver must be consulted");
        assert_eq!(report.human_interventions(), resolver.0);
    }

    #[test]
    fn human_intervention_drops_as_schema_matures() {
        // Fig 2's narrative: early stages need more intervention.
        let mut integ = SchemaIntegrator::new(
            CompositeMatcher::broadway(),
            IntegrationConfig { accept_threshold: 0.75, ..Default::default() },
        );
        let spellings = [
            ("show_name", "cheapest_price"),
            ("title", "cost"),
            ("production", "ticket_price"),
            ("show", "price"),
            ("name", "from_price"),
        ];
        let mut interventions = Vec::new();
        for (i, (s, p)) in spellings.iter().enumerate() {
            let report = integ.integrate(&shows_source(i as u32, &format!("s{i}"), s, p));
            interventions.push(report.human_interventions());
        }
        assert_eq!(interventions[0], 0, "seed source has nothing to ask about");
        let early: usize = interventions[1..3].iter().sum();
        let late: usize = interventions[3..].iter().sum();
        assert!(
            late <= early,
            "maturing schema must not need more human help: {interventions:?}"
        );
        assert_eq!(integ.global().len(), 2, "{:?}", integ.global().attribute_names());
    }

    #[test]
    fn dry_run_does_not_mutate() {
        let mut integ = SchemaIntegrator::broadway();
        integ.integrate(&shows_source(1, "s1", "show_name", "cheapest_price"));
        let before = integ.global().len();
        let scored = integ.dry_run(&shows_source(2, "s2", "title", "cost"));
        assert_eq!(integ.global().len(), before);
        assert_eq!(scored.len(), 2);
        assert!(scored[0].1.len() <= integ.config().max_candidates);
    }

    #[test]
    #[should_panic(expected = "escalate threshold")]
    fn inverted_thresholds_panic() {
        SchemaIntegrator::new(
            CompositeMatcher::broadway(),
            IntegrationConfig { accept_threshold: 0.3, escalate_threshold: 0.6, max_candidates: 5 },
        );
    }
}
