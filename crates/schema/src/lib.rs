//! Schema integration facility.
//!
//! Data Tamer builds its global schema *bottom-up*: the first source's
//! attributes seed the global schema; each later source is matched
//! attribute-by-attribute against it with heuristic scores; high-confidence
//! matches auto-accept, mid-confidence ones escalate to experts, and
//! unmatched attributes are added as new global attributes or ignored
//! (paper Figs 2–3).
//!
//! * [`global`] — the growing global schema with per-attribute merged
//!   profiles and provenance.
//! * [`synonyms`] — a domain synonym dictionary used by the name matcher.
//! * [`matchers`] — the matcher ensemble: name, value-overlap,
//!   distribution, and TF-IDF content matchers plus a weighted composite
//!   (Data Tamer's "experts").
//! * [`suggestion`] — match suggestions, scores, and decisions.
//! * [`integrate`] — the integration loop with accept/escalate thresholds
//!   and pluggable human resolution.

pub mod global;
pub mod integrate;
pub mod matchers;
pub mod suggestion;
pub mod synonyms;

pub use global::{GlobalAttribute, GlobalSchema};
pub use integrate::{IntegrationConfig, IntegrationReport, SchemaIntegrator};
pub use matchers::{CompositeMatcher, MatcherWeights};
pub use suggestion::{Decision, MatchCandidate, MatchSuggestion};
pub use synonyms::SynonymDict;
