//! Match suggestions and integration decisions.
//!
//! These are the structured equivalents of the paper's Fig 2/3 UI: per
//! source attribute, a ranked candidate list with heuristic scores, an
//! alert when no counterpart exists, and the chosen action.

use datatamer_model::AttrId;

/// One candidate global attribute for a source attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchCandidate {
    /// Candidate global attribute.
    pub attr: AttrId,
    /// Its canonical name (denormalised for display).
    pub name: String,
    /// Composite heuristic score in `[0, 1]`.
    pub score: f64,
}

/// The action taken for a source attribute.
#[derive(Debug, Clone, PartialEq)]
pub enum Decision {
    /// Mapped automatically: score cleared the acceptance threshold.
    AutoAccept { attr: AttrId, score: f64 },
    /// A human confirmed the mapping (directly or via expert sourcing).
    ExpertAccept { attr: AttrId, score: f64 },
    /// A human rejected all candidates; attribute added to the global schema.
    ExpertNewAttribute,
    /// No candidate scored above the floor; added as a new global attribute
    /// (the Fig 2 alert: "fields that do not have any counterpart ... add to
    /// the global schema").
    NewAttribute,
    /// Dropped on request (the Fig 2 "ignore" action).
    Ignore,
}

impl Decision {
    /// The mapped global attribute, when the decision maps one.
    pub fn mapped_attr(&self) -> Option<AttrId> {
        match self {
            Decision::AutoAccept { attr, .. } | Decision::ExpertAccept { attr, .. } => Some(*attr),
            _ => None,
        }
    }

    /// True when a human was involved.
    pub fn required_human(&self) -> bool {
        matches!(self, Decision::ExpertAccept { .. } | Decision::ExpertNewAttribute)
    }
}

/// The full suggestion record for one source attribute.
#[derive(Debug, Clone)]
pub struct MatchSuggestion {
    /// The source attribute name.
    pub source_attr: String,
    /// Ranked candidates (best first), possibly empty on a fresh schema.
    pub candidates: Vec<MatchCandidate>,
    /// True when no candidate reached even the escalation floor — the
    /// "no counterpart in the global schema yet" alert of Fig 2.
    pub no_counterpart_alert: bool,
    /// The decision taken.
    pub decision: Decision,
}

impl MatchSuggestion {
    /// Best candidate score (0.0 when none).
    pub fn best_score(&self) -> f64 {
        self.candidates.first().map(|c| c.score).unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_accessors() {
        let auto = Decision::AutoAccept { attr: AttrId(1), score: 0.9 };
        assert_eq!(auto.mapped_attr(), Some(AttrId(1)));
        assert!(!auto.required_human());
        let expert = Decision::ExpertAccept { attr: AttrId(2), score: 0.6 };
        assert_eq!(expert.mapped_attr(), Some(AttrId(2)));
        assert!(expert.required_human());
        assert_eq!(Decision::NewAttribute.mapped_attr(), None);
        assert!(Decision::ExpertNewAttribute.required_human());
        assert!(!Decision::Ignore.required_human());
    }

    #[test]
    fn best_score_defaults_to_zero() {
        let s = MatchSuggestion {
            source_attr: "x".into(),
            candidates: vec![],
            no_counterpart_alert: true,
            decision: Decision::NewAttribute,
        };
        assert_eq!(s.best_score(), 0.0);
        let s2 = MatchSuggestion {
            candidates: vec![
                MatchCandidate { attr: AttrId(0), name: "a".into(), score: 0.8 },
                MatchCandidate { attr: AttrId(1), name: "b".into(), score: 0.3 },
            ],
            ..s
        };
        assert_eq!(s2.best_score(), 0.8);
    }
}
