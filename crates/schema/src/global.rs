//! The bottom-up global schema.

use datatamer_model::{AttrId, AttributeDef, AttributeProfile, SourceId};

/// One attribute of the global schema.
#[derive(Debug, Clone)]
pub struct GlobalAttribute {
    /// Stable id.
    pub id: AttrId,
    /// Canonical display name (the name of the first source attribute that
    /// created it — bottom-up, per the paper).
    pub name: String,
    /// Merged content profile across all mapped source attributes.
    pub profile: AttributeProfile,
    /// Provenance: which `(source, attribute)` pairs map here.
    pub provenance: Vec<(SourceId, String)>,
}

impl GlobalAttribute {
    /// Number of distinct sources mapped to this attribute.
    pub fn source_count(&self) -> usize {
        let mut sources: Vec<SourceId> = self.provenance.iter().map(|(s, _)| *s).collect();
        sources.sort_unstable();
        sources.dedup();
        sources.len()
    }
}

/// The global integrated schema, grown bottom-up from source metadata.
#[derive(Debug, Clone, Default)]
pub struct GlobalSchema {
    attributes: Vec<GlobalAttribute>,
}

impl GlobalSchema {
    /// An empty global schema (the paper's Fig 2 starting state).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attributes.len()
    }

    /// True when no attribute exists yet.
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }

    /// Iterate attributes in creation order.
    pub fn iter(&self) -> impl Iterator<Item = &GlobalAttribute> {
        self.attributes.iter()
    }

    /// Attribute by id.
    pub fn get(&self, id: AttrId) -> Option<&GlobalAttribute> {
        self.attributes.iter().find(|a| a.id == id)
    }

    /// Attribute by canonical name (case-insensitive).
    pub fn by_name(&self, name: &str) -> Option<&GlobalAttribute> {
        self.attributes.iter().find(|a| a.name.eq_ignore_ascii_case(name))
    }

    /// Add a brand-new global attribute seeded from a source attribute.
    /// Returns its id.
    pub fn add_attribute(&mut self, source: SourceId, attr: &AttributeDef) -> AttrId {
        let id = AttrId(self.attributes.len() as u32);
        self.attributes.push(GlobalAttribute {
            id,
            name: attr.name.clone(),
            profile: attr.profile.clone(),
            provenance: vec![(source, attr.name.clone())],
        });
        id
    }

    /// Map a source attribute onto an existing global attribute: profiles
    /// merge and provenance extends. Panics on unknown id (callers hold ids
    /// handed out by this schema).
    pub fn map_attribute(&mut self, id: AttrId, source: SourceId, attr: &AttributeDef) {
        let slot = self
            .attributes
            .iter_mut()
            .find(|a| a.id == id)
            .expect("global attribute id must exist");
        slot.profile.merge(&attr.profile);
        slot.provenance.push((source, attr.name.clone()));
    }

    /// Canonical names in creation order.
    pub fn attribute_names(&self) -> Vec<&str> {
        self.attributes.iter().map(|a| a.name.as_str()).collect()
    }

    /// Rename an attribute (used when promoting a curated display name,
    /// e.g. `show_name` → `SHOW_NAME` for reports). Returns false when the
    /// id is unknown.
    pub fn rename(&mut self, id: AttrId, new_name: impl Into<String>) -> bool {
        match self.attributes.iter_mut().find(|a| a.id == id) {
            Some(a) => {
                a.name = new_name.into();
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datatamer_model::{Record, RecordId, SourceSchema, Value};

    fn schema_from(source: u32, rows: Vec<Vec<(&str, Value)>>) -> SourceSchema {
        let sid = SourceId(source);
        let records: Vec<Record> = rows
            .into_iter()
            .enumerate()
            .map(|(i, fields)| Record::from_pairs(sid, RecordId(i as u64), fields))
            .collect();
        SourceSchema::profile_records(sid, format!("src{source}"), &records)
    }

    #[test]
    fn add_and_lookup() {
        let mut g = GlobalSchema::new();
        assert!(g.is_empty());
        let s = schema_from(1, vec![vec![("show_name", Value::from("Matilda"))]]);
        let id = g.add_attribute(SourceId(1), &s.attributes[0]);
        assert_eq!(g.len(), 1);
        assert_eq!(g.get(id).unwrap().name, "show_name");
        assert!(g.by_name("SHOW_NAME").is_some(), "case-insensitive lookup");
        assert!(g.by_name("missing").is_none());
    }

    #[test]
    fn map_merges_profiles_and_provenance() {
        let mut g = GlobalSchema::new();
        let s1 = schema_from(1, vec![vec![("price", Value::from("$27"))]]);
        let id = g.add_attribute(SourceId(1), &s1.attributes[0]);
        let s2 = schema_from(
            2,
            vec![vec![("cost", Value::from("$99"))], vec![("cost", Value::from("$45"))]],
        );
        g.map_attribute(id, SourceId(2), &s2.attributes[0]);
        let attr = g.get(id).unwrap();
        assert_eq!(attr.profile.count, 3);
        assert_eq!(attr.source_count(), 2);
        assert_eq!(attr.provenance.len(), 2);
        assert_eq!(attr.name, "price", "name stays with the seeding source");
    }

    #[test]
    fn rename_for_display() {
        let mut g = GlobalSchema::new();
        let s = schema_from(1, vec![vec![("show_name", Value::from("Annie"))]]);
        let id = g.add_attribute(SourceId(1), &s.attributes[0]);
        assert!(g.rename(id, "SHOW_NAME"));
        assert_eq!(g.attribute_names(), vec!["SHOW_NAME"]);
        assert!(!g.rename(AttrId(99), "X"));
    }
}
