//! End-to-end integration test of the paper's demo scenario (§V):
//! Tables IV, V and VI from generated data through the full pipeline.

use datatamer::core::{DataTamer, DataTamerConfig};
use datatamer::corpus::ftables::{self, FtablesConfig};
use datatamer::corpus::names::TABLE_IV_SHOWS;
use datatamer::corpus::webtext::{WebTextConfig, WebTextCorpus, MATILDA_FEED};
use datatamer::text::DomainParser;

fn build() -> DataTamer {
    let corpus = WebTextCorpus::generate(&WebTextConfig {
        num_fragments: 2_500,
        ..Default::default()
    });
    let sources = ftables::generate(&FtablesConfig::default(), 1000);
    let mut dt = DataTamer::new(DataTamerConfig::default());
    for s in &sources {
        dt.register_structured(&s.name, &s.records).unwrap();
    }
    let parser = DomainParser::with_gazetteer(corpus.gazetteer.clone());
    let frags: Vec<(&str, &str)> = corpus
        .fragments
        .iter()
        .map(|f| (f.text.as_str(), f.kind.label()))
        .collect();
    dt.ingest_webtext(parser, frags).unwrap();
    dt
}

#[test]
fn table_iv_v_vi_reproduce() {
    let dt = build();

    // Table IV: top-10 most discussed award-winning shows overlaps the paper.
    let top = dt.top_discussed(10).unwrap();
    assert_eq!(top.len(), 10);
    let titles: Vec<&str> = top.iter().map(|s| s.title.as_str()).collect();
    let hits = TABLE_IV_SHOWS.iter().filter(|p| titles.contains(*p)).count();
    assert!(hits >= 9, "paper overlap {hits}/10: {titles:?}");
    assert_eq!(titles[0], "The Walking Dead", "the most discussed show matches");
    assert!(top.iter().all(|s| s.award_winning));
    // Counts are non-increasing.
    for w in top.windows(2) {
        assert!(w[0].mentions >= w[1].mentions);
    }

    // Table V: text-only Matilda — feed text, no structured attributes.
    let text_only = dt.fuse_text_only();
    let matilda = DataTamer::lookup(&text_only, "Matilda").expect("matilda in text");
    assert_eq!(
        matilda.record.get_text("TEXT_FEED").as_deref(),
        Some(MATILDA_FEED),
        "the pinned paper feed wins First-policy fusion"
    );
    assert!(matilda.record.get("THEATER").is_none());
    assert!(matilda.record.get("CHEAPEST_PRICE").is_none());

    // Table VI: fused Matilda carries the paper's exact enrichment values.
    let fused = dt.fuse();
    let matilda = DataTamer::lookup(&fused, "Matilda").expect("matilda fused");
    let rec = &matilda.record;
    assert_eq!(
        rec.get_text("THEATER").as_deref(),
        Some("Shubert 225 W. 44th St between 7th and 8th")
    );
    assert_eq!(
        rec.get_text("PERFORMANCE").as_deref(),
        Some("Tues at 7pm Wed at 8pm Thurs at 7pm Fri-Sat at 8pm Wed, Sat at 2pm Sun at 3pm")
    );
    assert_eq!(rec.get_text("CHEAPEST_PRICE").as_deref(), Some("$27"));
    assert_eq!(rec.get_text("FIRST").as_deref(), Some("3/4/2013"));
    assert_eq!(rec.get_text("TEXT_FEED").as_deref(), Some(MATILDA_FEED));
    assert!(matilda.member_count > 2, "text + several structured sources fused");
}

#[test]
fn fusion_enriches_most_shows_not_just_matilda() {
    let dt = build();
    let text_only = dt.fuse_text_only();
    let fused = dt.fuse();
    let mut enriched = 0;
    let mut checked = 0;
    for entity in &text_only {
        let Some(after) = fused.iter().find(|f| f.key == entity.key) else {
            continue;
        };
        checked += 1;
        if after.record.get("CHEAPEST_PRICE").is_some()
            && entity.record.get("CHEAPEST_PRICE").is_none()
        {
            enriched += 1;
        }
    }
    assert!(checked > 10, "need a meaningful sample: {checked}");
    assert!(
        enriched as f64 / checked as f64 > 0.5,
        "fusion should enrich most discussed shows: {enriched}/{checked}"
    );
}

#[test]
fn global_schema_converges_to_canonical_attributes() {
    let dt = build();
    let n = dt.global_schema().len();
    // 12 canonical attributes; a couple of stray spellings are tolerable.
    assert!(
        (10..=16).contains(&n),
        "global schema must converge, not proliferate: {} ({:?})",
        n,
        dt.global_schema().attribute_names()
    );
    // Every canonical family is represented.
    for name in ["show_name", "theater", "cheapest_price"] {
        assert!(
            dt.global_schema().by_name(name).is_some(),
            "missing canonical attribute {name}"
        );
    }
    // Provenance shows heavy reuse: show_name must map from most sources.
    let show = dt.global_schema().by_name("show_name").unwrap();
    assert!(show.source_count() >= 15, "show_name sources: {}", show.source_count());
}

#[test]
fn cleaning_transforms_applied_during_registration() {
    let dt = build();
    let reports = dt.cleaning_reports();
    assert_eq!(reports.len(), 20);
    let total_transformed: usize = reports.iter().map(|(_, r)| r.values_transformed).sum();
    let total_nulls: usize = reports.iter().map(|(_, r)| r.nulls_canonicalized).sum();
    assert!(total_transformed > 100, "EUR→USD and date fixes: {total_transformed}");
    assert!(total_nulls > 20, "null canonicalisation: {total_nulls}");
    // No euro price survives cleaning.
    for r in dt.structured_records() {
        if let Some(price) = r.get_text("CHEAPEST_PRICE") {
            assert!(
                !price.contains('€') && !price.to_lowercase().contains("eur"),
                "unconverted price: {price}"
            );
        }
    }
}
