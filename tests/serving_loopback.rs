//! End-to-end serving pin over a real loopback socket: the HTTP front
//! end stays up and well-formed while delta ingest republishes snapshots
//! under it, and once ingest settles, the bytes it serves are identical
//! to what a from-scratch rebuild of the view would serve — readers can
//! never tell the incremental path apart from a full rebuild.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use datatamer::core::fusion::{BlockedErConfig, GroupingStrategy};
use datatamer::core::{DataTamer, DataTamerConfig, PipelinePlan};
use datatamer::model::{Record, RecordId, SourceId, Value};
use datatamer::query::http::render_result;
use datatamer::query::prelude::*;
use datatamer::serve::ServeSession;

fn show(id: u64, name: &str, price: &str) -> Record {
    Record::from_pairs(
        SourceId(0),
        RecordId(id),
        vec![("SHOW_NAME", Value::from(name)), ("CHEAPEST_PRICE", Value::from(price))],
    )
}

fn config() -> DataTamerConfig {
    DataTamerConfig {
        extent_size: 64 * 1024,
        shards: 2,
        grouping: GroupingStrategy::BlockedEr(BlockedErConfig {
            incremental: true,
            ..Default::default()
        }),
        ..Default::default()
    }
}

/// One blocking GET; returns `(status_line, body)`. The server sends
/// `Connection: close`, so reading to EOF terminates.
fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: loopback\r\n\r\n").expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("recv");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    let status = head.lines().next().unwrap_or_default().to_string();
    (status, body.to_string())
}

#[test]
fn serving_stays_live_and_deterministic_across_delta_ingest() {
    // Seed: 8 groups of near-duplicate shows, so deltas cause real merges.
    let name = |i: u64| format!("Group{} Title{}", i % 8, i % 8);
    let corpus: Vec<Record> =
        (0..40).map(|i| show(i, &name(i), &format!("${}", 10 + i % 3))).collect();
    let (seed, deltas) = corpus.split_at(20);

    let mut dt = DataTamer::new(config());
    dt.run(PipelinePlan::new().structured("s1", seed)).expect("seed run");

    let spec = IndexSpec::default().hash_on("CHEAPEST_PRICE").ordered_on("_members");
    let mut session =
        ServeSession::bind("127.0.0.1:0", ServerConfig::default()).expect("bind loopback");
    session.publish("shows", &dt, spec.clone());
    let addr = session.addr();

    // Concurrent readers: hammer every route while ingest republishes.
    let done = Arc::new(AtomicBool::new(false));
    let key_path =
        format!("/collections/shows/entity/{}", dt.context().fused[0].key.replace(' ', "%20"));
    let routes: Vec<String> = vec![
        "/collections".to_string(),
        "/collections/shows/stats".to_string(),
        "/collections/shows/query?agg=count".to_string(),
        "/collections/shows/query?where=_members>=1&order=_key&limit=3".to_string(),
        key_path,
    ];
    let readers: Vec<_> = (0..3)
        .map(|r| {
            let done = Arc::clone(&done);
            let routes = routes.clone();
            std::thread::spawn(move || {
                let mut served = 0usize;
                while !done.load(Ordering::SeqCst) || served == 0 {
                    let path = &routes[(served + r) % routes.len()];
                    let (status, body) = http_get(addr, path);
                    // The entity route may briefly 404 while a merge renames
                    // its cluster key; everything else must be a 200. Every
                    // response must be complete JSON either way.
                    if path.contains("/entity/") {
                        assert!(
                            status.contains("200 OK") || status.contains("404"),
                            "{path}: {status}"
                        );
                    } else {
                        assert!(status.contains("200 OK"), "{path}: {status} {body}");
                    }
                    assert!(
                        body.starts_with('{') && body.ends_with('}'),
                        "{path}: truncated body {body:?}"
                    );
                    served += 1;
                }
                served
            })
        })
        .collect();

    // Ingest: five delta batches, republishing after each. Readers keep
    // being served from whole snapshots throughout.
    for batch in deltas.chunks(4) {
        dt.consolidate_delta(batch).expect("delta ingest");
        session.publish("shows", &dt, spec.clone());
    }
    done.store(true, Ordering::SeqCst);
    for r in readers {
        let served = r.join().expect("reader thread");
        assert!(served > 0, "reader never completed a request");
    }

    // The published view was maintained incrementally — one full build at
    // seed publish, one delta sync per batch, no rebuilds in between.
    let m = session.view("shows").expect("view exists").maintenance().clone();
    assert_eq!(m.full_builds, 1, "{m:?}");
    assert_eq!(m.delta_syncs, 5, "{m:?}");

    // Post-ingest: the live server's bytes equal what a from-scratch view
    // over the same fused output renders — plan, candidates, and rows.
    let ctx = dt.context();
    let mut fresh = CollectionView::new(spec);
    fresh.sync(&ctx.fused, &ctx.fusion_groups, None);
    let fresh_snap = fresh.snapshot(Vec::new());
    let checks: Vec<(&str, Query)> = vec![
        (
            "/collections/shows/query?agg=count",
            Query::filtered(Predicate::True).aggregate(Aggregate::Count),
        ),
        (
            "/collections/shows/query?where=_members>=1&order=_key&limit=3",
            Query::filtered(Predicate::Gte("_members".into(), Value::Int(1)))
                .order_by("_key", Order::Asc)
                .take(3),
        ),
        (
            "/collections/shows/query?agg=group:CHEAPEST_PRICE",
            Query::filtered(Predicate::True)
                .aggregate(Aggregate::GroupBy("CHEAPEST_PRICE".into())),
        ),
    ];
    for (path, q) in checks {
        let (status, live_body) = http_get(addr, path);
        assert!(status.contains("200 OK"), "{path}: {status}");
        let run = fresh_snap.execute(&q);
        let rebuilt = render_result(&run.result, run.plan.name(), run.candidates);
        assert_eq!(live_body, rebuilt, "served bytes diverge from a rebuild for {path}");
        let oracle = execute_oracle(&ctx.fused, &q).clone();
        assert_eq!(format!("{:?}", run.result), format!("{oracle:?}"), "rebuild vs oracle");
    }

    session.stop();
}

#[test]
fn malformed_and_unknown_requests_get_clean_errors() {
    let mut dt = DataTamer::new(config());
    dt.run(PipelinePlan::new().structured("s1", &[show(0, "Solo Show", "$9")]))
        .expect("seed run");
    let mut session =
        ServeSession::bind("127.0.0.1:0", ServerConfig::default()).expect("bind loopback");
    session.publish("shows", &dt, IndexSpec::default());
    let addr = session.addr();

    let (status, body) = http_get(addr, "/collections/nope/stats");
    assert!(status.contains("404"), "{status}");
    assert!(body.contains("error"), "{body}");

    let (status, _) = http_get(addr, "/collections/shows/unknown");
    assert!(status.contains("404"), "{status}");

    let (status, body) = http_get(addr, "/collections/shows/query?bogus=1");
    assert!(status.contains("400"), "{status}");
    assert!(body.contains("unknown parameter"), "{body}");

    let (status, _) = http_get(addr, "/collections/shows/query?where=PRICE");
    assert!(status.contains("400"), "{status}");

    // Non-GET methods are refused, not crashed on.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"POST /collections/shows/query HTTP/1.1\r\nHost: x\r\n\r\n")
        .expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("recv");
    assert!(raw.starts_with("HTTP/1.1 405"), "{raw}");

    // The point-lookup route works and serves the fused record.
    let key = dt.context().fused[0].key.replace(' ', "%20");
    let (status, body) = http_get(addr, &format!("/collections/shows/entity/{key}"));
    assert!(status.contains("200 OK"), "{status}");
    assert!(body.contains("\"member_count\":1"), "{body}");
    assert!(body.contains("Solo Show"), "{body}");

    session.stop();
}
