//! The incremental-consolidation correctness pin: splitting a corpus into
//! any prefix + any sequence of delta batches and feeding it through
//! [`DataTamer::consolidate_delta`] must produce byte-identical fused
//! entities and cluster membership to a from-scratch full run over the
//! concatenated corpus — at any thread count.
//!
//! The resident state this guards: the scoring context and blocking
//! indices extend in place, only touched buckets are probed (never
//! old-vs-old), accepted pairs merge into a persistent union-find, and
//! fused entities re-resolve only for dirty clusters.

use datatamer::core::fusion::{BlockedErConfig, GroupingStrategy, CHEAPEST_PRICE, SHOW_NAME};
use datatamer::core::{DataTamer, DataTamerConfig, DeltaReport, PipelinePlan};
use datatamer::model::{Record, RecordId, SourceId, Value};
use proptest::prelude::*;
use rayon::ThreadPoolBuilder;

/// A record already in canonical shape (upper-case global attributes,
/// clean-stable values): schema mapping and cleaning are identities for
/// it, so raw delta batches and staged registration yield byte-identical
/// corpus records — the precondition for comparing the two paths.
fn show(id: u64, name: &str, price: &str) -> Record {
    Record::from_pairs(
        SourceId(0),
        RecordId(id),
        vec![(SHOW_NAME, Value::from(name)), (CHEAPEST_PRICE, Value::from(price))],
    )
}

fn config() -> DataTamerConfig {
    DataTamerConfig {
        extent_size: 64 * 1024,
        shards: 2,
        grouping: GroupingStrategy::BlockedEr(BlockedErConfig {
            incremental: true,
            ..Default::default()
        }),
        ..Default::default()
    }
}

/// Every observable consolidation output, flattened to comparable blobs:
/// the fused composites (key, member count, confidence, full record) and
/// the cluster membership behind them.
fn fingerprint(dt: &DataTamer) -> (String, String) {
    let fused: String = dt
        .context()
        .fused
        .iter()
        .map(|f| format!("{}|{}|{:?}|{:?}\n", f.key, f.member_count, f.confidence, f.record))
        .collect();
    (fused, format!("{:?}", dt.context().fusion_groups))
}

/// Seed with `prefix` through the staged pipeline, then ingest each batch
/// through the resident-state delta path.
fn incremental_run(
    prefix: &[Record],
    batches: &[&[Record]],
) -> ((String, String), Vec<DeltaReport>) {
    let mut dt = DataTamer::new(config());
    let mut plan = PipelinePlan::new();
    if !prefix.is_empty() {
        plan = plan.structured("s1", prefix);
    }
    dt.run(plan).expect("staged seed run");
    let reports: Vec<DeltaReport> =
        batches.iter().map(|b| dt.consolidate_delta(b).expect("delta ingest")).collect();
    (fingerprint(&dt), reports)
}

/// From-scratch run over the whole corpus as one structured source.
fn full_run(corpus: &[Record]) -> (String, String) {
    let mut dt = DataTamer::new(config());
    let mut plan = PipelinePlan::new();
    if !corpus.is_empty() {
        plan = plan.structured("s1", corpus);
    }
    dt.run(plan).expect("full run");
    fingerprint(&dt)
}

/// Random corpora with real consolidation structure: a handful of entity
/// groups, each spawning exact duplicates, word-order swaps, typo
/// variants, and cross-group-token variants, at slightly varying prices —
/// so runs contain merges, near-misses, and singletons.
fn corpus_strategy() -> impl Strategy<Value = Vec<Record>> {
    prop::collection::vec((0u64..8, 0u8..4, 0u8..3), 0..60).prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (g, variant, p))| {
                let name = match variant {
                    0 => format!("Group{g} Title{g}"),
                    1 => format!("Title{g} Group{g}"),
                    2 => format!("Group{g} Titl{g}"),
                    _ => format!("Common Group{g} Title{g}"),
                };
                show(i as u64, &name, &format!("${}", 10 + u64::from(p)))
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn any_prefix_delta_split_matches_a_full_rebuild(
        corpus in corpus_strategy(),
        cut_bytes in prop::collection::vec(any::<u8>(), 1..5),
    ) {
        // Map the raw cut bytes onto sorted positions in the corpus; the
        // segments between them are the prefix and 1..=5 delta batches
        // (empty segments included — an empty delta must be a no-op).
        let mut cuts: Vec<usize> = cut_bytes
            .iter()
            .map(|&b| (usize::from(b) * corpus.len()) / 256)
            .collect();
        cuts.sort_unstable();
        let prefix = &corpus[..cuts[0]];
        let mut batches: Vec<&[Record]> = Vec::new();
        for w in cuts.windows(2) {
            batches.push(&corpus[w[0]..w[1]]);
        }
        batches.push(&corpus[*cuts.last().unwrap()..]);

        let serial = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let wide = ThreadPoolBuilder::new().num_threads(8).build().unwrap();

        let full_serial = serial.install(|| full_run(&corpus));
        let (inc_serial, reports_serial) =
            serial.install(|| incremental_run(prefix, &batches));
        prop_assert_eq!(
            &inc_serial, &full_serial,
            "incremental (serial) diverged from the full rebuild"
        );

        let full_wide = wide.install(|| full_run(&corpus));
        let (inc_wide, reports_wide) = wide.install(|| incremental_run(prefix, &batches));
        prop_assert_eq!(&full_wide, &full_serial, "full rebuild is thread-count dependent");
        prop_assert_eq!(&inc_wide, &full_serial, "incremental (wide) diverged");
        prop_assert_eq!(reports_wide, reports_serial, "delta reports are thread-count dependent");
    }
}

#[test]
fn only_dirty_clusters_reresolve() {
    // Token-unique names: each record blocks alone, so the corpus settles
    // into one cluster per distinct name — a delta duplicating one name
    // must dirty exactly that cluster and reuse every other.
    let corpus: Vec<Record> =
        (0..30).map(|i| show(i, &format!("Unique{i} Show{i}"), "$10")).collect();
    let mut dt = DataTamer::new(config());
    dt.run(PipelinePlan::new().structured("s1", &corpus)).expect("seed run");
    let seed = dt.consolidate_delta(&[]).expect("seeding no-op delta");
    assert_eq!(seed.total_records, 30);

    let d = dt.consolidate_delta(&[show(100, "Unique7 Show7", "$10")]).expect("delta");
    assert_eq!(d.dirty_clusters, 1, "{d:?}");
    assert_eq!(d.reused_clusters, 29, "{d:?}");
    assert_eq!(d.accepted_pairs, 1, "{d:?}");
    assert!(d.scored_pairs <= 2, "a one-record delta must not rescore the corpus: {d:?}");
    assert!(d.reused_context_fraction > 0.96, "{d:?}");

    // And the merged view agrees with a rebuild over the concatenation.
    let mut all = corpus.clone();
    all.push(show(100, "Unique7 Show7", "$10"));
    assert_eq!(fingerprint(&dt), full_run(&all));
}
