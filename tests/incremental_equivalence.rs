//! The incremental-consolidation correctness pin: splitting a corpus into
//! any prefix + any sequence of delta batches and feeding it through
//! [`DataTamer::consolidate_delta`] must produce byte-identical fused
//! entities and cluster membership to a from-scratch full run over the
//! concatenated corpus — at any thread count.
//!
//! The resident state this guards: the scoring context and blocking
//! indices extend in place, only touched buckets are probed (never
//! old-vs-old), accepted pairs merge into a persistent union-find, and
//! fused entities re-resolve only for dirty clusters.

use std::sync::atomic::{AtomicUsize, Ordering};

use datatamer::core::fusion::{BlockedErConfig, GroupingStrategy, CHEAPEST_PRICE, SHOW_NAME};
use datatamer::core::{DataTamer, DataTamerConfig, DeltaLogConfig, DeltaReport, PipelinePlan};
use datatamer::model::{Record, RecordId, SourceId, Value};
use proptest::prelude::*;
use rayon::ThreadPoolBuilder;

/// Distinguishes delta-log temp dirs across tests in one process.
static LOG_SEQ: AtomicUsize = AtomicUsize::new(0);

/// A record already in canonical shape (upper-case global attributes,
/// clean-stable values): schema mapping and cleaning are identities for
/// it, so raw delta batches and staged registration yield byte-identical
/// corpus records — the precondition for comparing the two paths.
fn show(id: u64, name: &str, price: &str) -> Record {
    Record::from_pairs(
        SourceId(0),
        RecordId(id),
        vec![(SHOW_NAME, Value::from(name)), (CHEAPEST_PRICE, Value::from(price))],
    )
}

fn config() -> DataTamerConfig {
    DataTamerConfig {
        extent_size: 64 * 1024,
        shards: 2,
        grouping: GroupingStrategy::BlockedEr(BlockedErConfig {
            incremental: true,
            ..Default::default()
        }),
        ..Default::default()
    }
}

/// `(memo, window, fused-cache)` residency budgets.
type Budgets = (Option<usize>, Option<usize>, Option<usize>);

/// Like [`config`], but with residency budgets and (optionally) a
/// persistent delta log.
fn config_with(budgets: Budgets, delta_log: Option<DeltaLogConfig>) -> DataTamerConfig {
    let (memo_budget, window_budget, fused_cache_budget) = budgets;
    DataTamerConfig {
        extent_size: 64 * 1024,
        shards: 2,
        grouping: GroupingStrategy::BlockedEr(BlockedErConfig {
            incremental: true,
            memo_budget,
            window_budget,
            ..Default::default()
        }),
        fused_cache_budget,
        delta_log,
        ..Default::default()
    }
}

/// Every observable consolidation output, flattened to comparable blobs:
/// the fused composites (key, member count, confidence, full record) and
/// the cluster membership behind them.
fn fingerprint(dt: &DataTamer) -> (String, String) {
    let fused: String = dt
        .context()
        .fused
        .iter()
        .map(|f| format!("{}|{}|{:?}|{:?}\n", f.key, f.member_count, f.confidence, f.record))
        .collect();
    (fused, format!("{:?}", dt.context().fusion_groups))
}

/// Seed with `prefix` through the staged pipeline, then ingest each batch
/// through the resident-state delta path.
fn incremental_run(
    prefix: &[Record],
    batches: &[&[Record]],
) -> ((String, String), Vec<DeltaReport>) {
    let mut dt = DataTamer::new(config());
    let mut plan = PipelinePlan::new();
    if !prefix.is_empty() {
        plan = plan.structured("s1", prefix);
    }
    dt.run(plan).expect("staged seed run");
    let reports: Vec<DeltaReport> =
        batches.iter().map(|b| dt.consolidate_delta(b).expect("delta ingest")).collect();
    (fingerprint(&dt), reports)
}

/// From-scratch run over the whole corpus as one structured source.
fn full_run(corpus: &[Record]) -> (String, String) {
    let mut dt = DataTamer::new(config());
    let mut plan = PipelinePlan::new();
    if !corpus.is_empty() {
        plan = plan.structured("s1", corpus);
    }
    dt.run(plan).expect("full run");
    fingerprint(&dt)
}

/// Seed with `prefix`, consolidate `batches[..kill_after]`, then *drop the
/// whole system* — the kill. Reopen over the same delta log, reseed from
/// the same prefix, consolidate the remaining batches, and return the
/// final fingerprint. Only the log survives the kill; the resident
/// consolidator, score memo, and fused cache are all lost with the first
/// instance.
fn restarted_run(
    prefix: &[Record],
    batches: &[&[Record]],
    kill_after: usize,
    budgets: Budgets,
    compact_after_frames: usize,
) -> (String, String) {
    let seq = LOG_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("dt_restart_{}_{seq}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let log = DeltaLogConfig {
        path: dir.join("delta.log"),
        compact_after_frames,
    };
    let cfg = config_with(budgets, Some(log));

    {
        let mut dt = DataTamer::new(cfg.clone());
        let mut plan = PipelinePlan::new();
        if !prefix.is_empty() {
            plan = plan.structured("s1", prefix);
        }
        dt.run(plan).expect("staged seed run");
        for b in &batches[..kill_after] {
            dt.consolidate_delta(b).expect("delta ingest before the kill");
        }
        // Dropped here: the kill. Nothing in-memory survives.
    }

    let mut dt = DataTamer::new(cfg);
    let mut plan = PipelinePlan::new();
    if !prefix.is_empty() {
        plan = plan.structured("s1", prefix);
    }
    dt.run(plan).expect("staged reseed run");
    for b in &batches[kill_after..] {
        dt.consolidate_delta(b).expect("delta ingest after restart");
    }
    // Force the seed + log replay even when the kill came after the last
    // batch (an empty delta must surface the replayed state and change
    // nothing else).
    dt.consolidate_delta(&[]).expect("no-op delta after restart");
    let fp = fingerprint(&dt);
    std::fs::remove_dir_all(&dir).ok();
    fp
}

/// Random corpora with real consolidation structure: a handful of entity
/// groups, each spawning exact duplicates, word-order swaps, typo
/// variants, and cross-group-token variants, at slightly varying prices —
/// so runs contain merges, near-misses, and singletons.
fn corpus_strategy() -> impl Strategy<Value = Vec<Record>> {
    prop::collection::vec((0u64..8, 0u8..4, 0u8..3), 0..60).prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (g, variant, p))| {
                let name = match variant {
                    0 => format!("Group{g} Title{g}"),
                    1 => format!("Title{g} Group{g}"),
                    2 => format!("Group{g} Titl{g}"),
                    _ => format!("Common Group{g} Title{g}"),
                };
                show(i as u64, &name, &format!("${}", 10 + u64::from(p)))
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn any_prefix_delta_split_matches_a_full_rebuild(
        corpus in corpus_strategy(),
        cut_bytes in prop::collection::vec(any::<u8>(), 1..5),
    ) {
        // Map the raw cut bytes onto sorted positions in the corpus; the
        // segments between them are the prefix and 1..=5 delta batches
        // (empty segments included — an empty delta must be a no-op).
        let mut cuts: Vec<usize> = cut_bytes
            .iter()
            .map(|&b| (usize::from(b) * corpus.len()) / 256)
            .collect();
        cuts.sort_unstable();
        let prefix = &corpus[..cuts[0]];
        let mut batches: Vec<&[Record]> = Vec::new();
        for w in cuts.windows(2) {
            batches.push(&corpus[w[0]..w[1]]);
        }
        batches.push(&corpus[*cuts.last().unwrap()..]);

        let serial = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let wide = ThreadPoolBuilder::new().num_threads(8).build().unwrap();

        let full_serial = serial.install(|| full_run(&corpus));
        let (inc_serial, reports_serial) =
            serial.install(|| incremental_run(prefix, &batches));
        prop_assert_eq!(
            &inc_serial, &full_serial,
            "incremental (serial) diverged from the full rebuild"
        );

        let full_wide = wide.install(|| full_run(&corpus));
        let (inc_wide, reports_wide) = wide.install(|| incremental_run(prefix, &batches));
        prop_assert_eq!(&full_wide, &full_serial, "full rebuild is thread-count dependent");
        prop_assert_eq!(&inc_wide, &full_serial, "incremental (wide) diverged");
        prop_assert_eq!(reports_wide, reports_serial, "delta reports are thread-count dependent");
    }

    // The PR-7 pin: kill the system at *any* batch boundary, under *any*
    // residency budget (including zero everywhere), reopen it over the
    // same delta log — and the final fused output is still byte-identical
    // to a from-scratch rebuild, at 1 and 8 threads.
    #[test]
    fn kill_restart_at_any_boundary_matches_a_full_rebuild(
        corpus in corpus_strategy(),
        cut_bytes in prop::collection::vec(any::<u8>(), 1..4),
        kill_byte in any::<u8>(),
        budget_sel in 0usize..4,
        compact_sel in 0usize..2,
    ) {
        let mut cuts: Vec<usize> = cut_bytes
            .iter()
            .map(|&b| (usize::from(b) * corpus.len()) / 256)
            .collect();
        cuts.sort_unstable();
        let prefix = &corpus[..cuts[0]];
        let mut batches: Vec<&[Record]> = Vec::new();
        for w in cuts.windows(2) {
            batches.push(&corpus[w[0]..w[1]]);
        }
        batches.push(&corpus[*cuts.last().unwrap()..]);
        // 0 = killed before any delta landed; len = killed after the last.
        let kill_after = (usize::from(kill_byte) * (batches.len() + 1)) / 256;
        let budgets: Budgets = [
            (None, None, None),
            (Some(0), Some(0), Some(0)),
            (Some(16), Some(4), Some(8)),
            (Some(1), None, Some(2)),
        ][budget_sel];
        // 0 compacts the log after every append; 64 never compacts here.
        let compact_after_frames = [0usize, 64][compact_sel];

        let serial = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let wide = ThreadPoolBuilder::new().num_threads(8).build().unwrap();

        let full = serial.install(|| full_run(&corpus));
        let rs = serial.install(|| {
            restarted_run(prefix, &batches, kill_after, budgets, compact_after_frames)
        });
        prop_assert_eq!(
            &rs, &full,
            "restart-and-replay (serial) diverged from the full rebuild \
             (kill_after={}, budgets={:?})", kill_after, budgets
        );
        let rw = wide.install(|| {
            restarted_run(prefix, &batches, kill_after, budgets, compact_after_frames)
        });
        prop_assert_eq!(
            &rw, &full,
            "restart-and-replay (wide) diverged (kill_after={}, budgets={:?})",
            kill_after, budgets
        );
    }
}

/// Zero residency budgets everywhere: every counter must fire, occupancy
/// must pin at zero after every batch, fused output must stay
/// byte-identical to the unbounded rebuild, and the per-batch reports must
/// be thread-count independent.
#[test]
fn zero_budgets_evict_everything_and_stay_byte_identical() {
    // One stopword-like token ("common") shared by every record blows the
    // 256-member bucket cap, so the blocker degrades it and accepted pairs
    // land in the retractable *window* sets — the state the window budget
    // governs. The numbered tail tokens pair duplicates up in core blocks.
    let corpus: Vec<Record> = (0..280)
        .map(|i| show(i, &format!("common show{:02}", i % 90), "$10"))
        .collect();
    let prefix = &corpus[..120];
    let batches: Vec<&[Record]> = vec![&corpus[120..200], &corpus[200..260], &corpus[260..]];

    let run = |threads: usize| {
        let pool = ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        pool.install(|| {
            let mut dt = DataTamer::new(config_with((Some(0), Some(0), Some(0)), None));
            dt.run(PipelinePlan::new().structured("s1", prefix)).expect("seed run");
            let reports: Vec<DeltaReport> = batches
                .iter()
                .map(|b| dt.consolidate_delta(b).expect("delta ingest"))
                .collect();
            (fingerprint(&dt), reports)
        })
    };

    let (fp_serial, reports_serial) = run(1);
    let (fp_wide, reports_wide) = run(8);

    assert_eq!(fp_serial, full_run(&corpus), "zero budgets changed the fused output");
    assert_eq!(fp_wide, fp_serial, "zero-budget run is thread-count dependent");
    assert_eq!(reports_wide, reports_serial, "reports are thread-count dependent");

    for (i, r) in reports_serial.iter().enumerate() {
        assert_eq!(r.memo_entries, 0, "batch {i} left memo entries: {r:?}");
        assert_eq!(r.window_entries, 0, "batch {i} left window entries: {r:?}");
        assert_eq!(r.fused_cache_entries, 0, "batch {i} left cached entities: {r:?}");
    }
    assert!(
        reports_serial.iter().any(|r| r.memo_evicted > 0),
        "memo eviction never fired: {reports_serial:?}"
    );
    assert!(
        reports_serial.iter().any(|r| r.window_evicted > 0),
        "window eviction never fired: {reports_serial:?}"
    );
    assert!(
        reports_serial.iter().any(|r| r.fused_cache_evicted > 0),
        "fused-cache eviction never fired: {reports_serial:?}"
    );
}

#[test]
fn only_dirty_clusters_reresolve() {
    // Token-unique names: each record blocks alone, so the corpus settles
    // into one cluster per distinct name — a delta duplicating one name
    // must dirty exactly that cluster and reuse every other.
    let corpus: Vec<Record> =
        (0..30).map(|i| show(i, &format!("Unique{i} Show{i}"), "$10")).collect();
    let mut dt = DataTamer::new(config());
    dt.run(PipelinePlan::new().structured("s1", &corpus)).expect("seed run");
    let seed = dt.consolidate_delta(&[]).expect("seeding no-op delta");
    assert_eq!(seed.total_records, 30);

    let d = dt.consolidate_delta(&[show(100, "Unique7 Show7", "$10")]).expect("delta");
    assert_eq!(d.dirty_clusters, 1, "{d:?}");
    assert_eq!(d.reused_clusters, 29, "{d:?}");
    assert_eq!(d.accepted_pairs, 1, "{d:?}");
    assert!(d.scored_pairs <= 2, "a one-record delta must not rescore the corpus: {d:?}");
    assert!(d.reused_context_fraction > 0.96, "{d:?}");

    // And the merged view agrees with a rebuild over the concatenation.
    let mut all = corpus.clone();
    all.push(show(100, "Unique7 Show7", "$10"));
    assert_eq!(fingerprint(&dt), full_run(&all));
}
