//! Determinism guard for every parallelism PR: the staged pipeline run
//! with a 1-thread rayon pool and with a wide pool must produce
//! byte-identical fused entities and identical collection statistics.
//!
//! The rayon shim honours `ThreadPool::install` thread-locally, so each
//! closure below runs the entire pipeline at its pool's width.

use datatamer::core::config::StorageConfig;
use datatamer::core::fusion::{
    BlockedErConfig, GroupingStrategy, RegistryConfig, ResolverSpec,
};
use datatamer::core::{DataTamer, DataTamerConfig, PipelinePlan};
use datatamer::storage::{BackendConfig, RoutingPolicy};
use datatamer::corpus::ftables::{self, FtablesConfig};
use datatamer::corpus::webtext::{WebTextConfig, WebTextCorpus};
use datatamer::text::DomainParser;
use rayon::ThreadPoolBuilder;

/// Build the full system through `DataTamer::run` and flatten every
/// observable output into one comparable byte blob. `resolvers` overrides
/// the fusion stage's truth-discovery routing when given.
fn run_pipeline_fingerprint_with(resolvers: Option<RegistryConfig>) -> (String, Vec<String>) {
    run_pipeline_fingerprint(resolvers, None)
}

/// [`run_pipeline_fingerprint_with`] plus an optional entity-consolidation
/// grouping override.
fn run_pipeline_fingerprint(
    resolvers: Option<RegistryConfig>,
    grouping: Option<GroupingStrategy>,
) -> (String, Vec<String>) {
    run_pipeline_fingerprint_on(resolvers, grouping, StorageConfig::default())
}

/// [`run_pipeline_fingerprint`] with the storage backend/routing under the
/// caller's control (the shard-coordinator equivalence tests point it at a
/// file backend).
fn run_pipeline_fingerprint_on(
    resolvers: Option<RegistryConfig>,
    grouping: Option<GroupingStrategy>,
    storage: StorageConfig,
) -> (String, Vec<String>) {
    let corpus = WebTextCorpus::generate(&WebTextConfig {
        num_fragments: 400,
        background_mentions: 4,
        padding_sentences: 2,
        ..Default::default()
    });
    let sources = ftables::generate(&FtablesConfig::default(), 1000);
    let mut dt = DataTamer::new(DataTamerConfig {
        extent_size: 64 * 1024,
        shards: 4,
        storage,
        ..Default::default()
    });
    let mut plan = PipelinePlan::new();
    for s in &sources {
        plan = plan.structured(&s.name, &s.records);
    }
    let frags: Vec<(&str, &str)> =
        corpus.fragments.iter().map(|f| (f.text.as_str(), f.kind.label())).collect();
    plan = plan.webtext(DomainParser::with_gazetteer(corpus.gazetteer.clone()), frags);
    if let Some(config) = resolvers {
        plan = plan.resolvers(config);
    }
    if let Some(strategy) = grouping {
        plan = plan.grouping(strategy);
    }

    let fused = dt.run(plan).expect("pipeline runs");
    // Byte-exact fingerprint of the fused output: key, member count, and
    // the full composite record (field order included via Debug).
    let fused_blob: String = fused
        .iter()
        .map(|f| format!("{}|{}|{:?}\n", f.key, f.member_count, f.record))
        .collect();

    // Collection statistics (counts, extents, index sizes) per collection.
    let stats: Vec<String> = dt
        .store()
        .collection_names()
        .into_iter()
        .map(|name| format!("{:?}", dt.collection_stats(&name).expect("stats")))
        .collect();
    (fused_blob, stats)
}

#[test]
fn serial_and_parallel_runs_are_byte_identical() {
    let serial_pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
    let (serial_fused, serial_stats) =
        serial_pool.install(|| run_pipeline_fingerprint_with(None));

    let wide_pool = ThreadPoolBuilder::new().num_threads(8).build().unwrap();
    let (wide_fused, wide_stats) = wide_pool.install(|| run_pipeline_fingerprint_with(None));

    assert_eq!(
        serial_fused, wide_fused,
        "fused entities must be byte-identical at any thread count"
    );
    assert_eq!(serial_stats, wide_stats, "collection stats must match");
    assert!(!serial_fused.is_empty(), "the fingerprint must cover real output");
}

#[test]
fn custom_resolver_registry_runs_are_byte_identical() {
    // A non-default registry exercising every truth-discovery resolver —
    // including the float-iterating SourceReliability — must stay
    // byte-deterministic across pool widths.
    let registry = || {
        RegistryConfig::uniform(ResolverSpec::MajorityVote)
            .with("CHEAPEST_PRICE", ResolverSpec::SourceReliability { iterations: 5 })
            .with("THEATER", ResolverSpec::MultiTruth { min_support: 0.25 })
            .with("PERFORMANCE", ResolverSpec::LatestWins)
            .with("FIRST", ResolverSpec::LatestWins)
    };
    let serial_pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
    let (serial_fused, serial_stats) =
        serial_pool.install(|| run_pipeline_fingerprint_with(Some(registry())));

    let wide_pool = ThreadPoolBuilder::new().num_threads(8).build().unwrap();
    let (wide_fused, wide_stats) =
        wide_pool.install(|| run_pipeline_fingerprint_with(Some(registry())));

    assert_eq!(
        serial_fused, wide_fused,
        "custom-registry fusion must be byte-identical at any thread count"
    );
    assert_eq!(serial_stats, wide_stats, "collection stats must match");
    assert!(!serial_fused.is_empty(), "the fingerprint must cover real output");

    // And the routing genuinely changed the output relative to the default.
    let (default_fused, _) =
        ThreadPoolBuilder::new().num_threads(1).build().unwrap().install(|| {
            run_pipeline_fingerprint_with(None)
        });
    assert_ne!(
        serial_fused, default_fused,
        "the custom registry must actually alter fused values"
    );
}

#[test]
fn blocked_er_grouping_runs_are_byte_identical() {
    // The blocked-ER consolidation path — blocking, rayon-parallel pair
    // scoring, union-find clustering — must produce byte-identical fused
    // output at any pool width, like the canonical-name path it joins.
    let grouping = || GroupingStrategy::BlockedEr(BlockedErConfig::default());
    let serial_pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
    let (serial_fused, serial_stats) =
        serial_pool.install(|| run_pipeline_fingerprint(None, Some(grouping())));

    let wide_pool = ThreadPoolBuilder::new().num_threads(8).build().unwrap();
    let (wide_fused, wide_stats) =
        wide_pool.install(|| run_pipeline_fingerprint(None, Some(grouping())));

    assert_eq!(
        serial_fused, wide_fused,
        "blocked-ER fusion must be byte-identical at any thread count"
    );
    assert_eq!(serial_stats, wide_stats, "collection stats must match");
    assert!(!serial_fused.is_empty(), "the fingerprint must cover real output");
}

#[test]
fn lsh_blocking_is_byte_identical_across_runs_and_thread_counts() {
    use datatamer::entity::{Blocker, BlockingStrategy};
    use datatamer::model::{Record, RecordId, SourceId, Value};

    // The LSH index hashes its band tables into RandomState-seeded
    // HashMaps whose iteration order changes with every table instance —
    // repeated runs (fresh tables) and different pool widths must still
    // produce identical candidates.
    let records: Vec<Record> = (0..200u64)
        .map(|i| {
            Record::from_pairs(
                SourceId(0),
                RecordId(i),
                vec![(
                    "name",
                    Value::from(format!("the walking dead season {} review", i % 13)),
                )],
            )
        })
        .collect();
    let strategy = BlockingStrategy::MinHashLsh { bands: 8, rows: 4 };
    let job = || Blocker::new("name", strategy).candidates(&records);

    let serial = ThreadPoolBuilder::new().num_threads(1).build().unwrap().install(job);
    let again = ThreadPoolBuilder::new().num_threads(1).build().unwrap().install(job);
    let wide = ThreadPoolBuilder::new().num_threads(8).build().unwrap().install(job);
    assert_eq!(serial, again, "fresh LSH tables must not change the output");
    assert_eq!(serial, wide, "thread count must not change the output");
    assert!(!serial.is_empty());
    assert!(serial.windows(2).all(|w| w[0] < w[1]), "sorted, deduplicated, self-pair-free");
}

#[test]
fn file_backed_pipeline_matches_memory_at_any_thread_count() {
    // The whole staged pipeline on a file-backed, hash-routed store must
    // fuse byte-identically to the in-memory default — and stay
    // byte-identical across pool widths. Collection stats (counts,
    // extents, data sizes) are backend-independent by construction, so
    // they participate in the comparison too.
    let storage = |tag: &str| StorageConfig {
        backend: BackendConfig::File {
            dir: std::env::temp_dir()
                .join(format!("dt_file_pipeline_{tag}_{}", std::process::id())),
        },
        routing: RoutingPolicy::HashKey { attr: "SHOW_NAME".into() },
        ..Default::default()
    };
    let cleanup = |cfg: &StorageConfig| {
        if let BackendConfig::File { dir } = &cfg.backend {
            let _ = std::fs::remove_dir_all(dir);
        }
    };

    let serial_cfg = storage("serial");
    cleanup(&serial_cfg);
    let serial_pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
    let (serial_fused, serial_stats) = serial_pool
        .install(|| run_pipeline_fingerprint_on(None, None, serial_cfg.clone()));

    let wide_cfg = storage("wide");
    cleanup(&wide_cfg);
    let wide_pool = ThreadPoolBuilder::new().num_threads(8).build().unwrap();
    let (wide_fused, wide_stats) =
        wide_pool.install(|| run_pipeline_fingerprint_on(None, None, wide_cfg.clone()));

    assert_eq!(
        serial_fused, wide_fused,
        "file-backed fusion must be byte-identical at any thread count"
    );
    assert_eq!(serial_stats, wide_stats, "collection stats must match");
    assert!(!serial_fused.is_empty(), "the fingerprint must cover real output");

    // Same routing on the memory backend: the backend must be invisible
    // in every fused byte and every stat.
    let memory_routing = StorageConfig {
        backend: BackendConfig::Memory,
        routing: RoutingPolicy::HashKey { attr: "SHOW_NAME".into() },
        ..Default::default()
    };
    let (memory_fused, memory_stats) =
        ThreadPoolBuilder::new().num_threads(1).build().unwrap().install(|| {
            run_pipeline_fingerprint_on(None, None, memory_routing)
        });
    assert_eq!(serial_fused, memory_fused, "backend must not change fused output");
    assert_eq!(serial_stats, memory_stats, "backend must not change stats");

    cleanup(&serial_cfg);
    cleanup(&wide_cfg);
}

#[test]
fn parallel_scan_and_consolidation_are_thread_count_invariant() {
    use datatamer::entity::{accepted_pairs, Blocker, BlockingStrategy, PairScorer, RecordSimilarity};
    use datatamer::model::{Record, RecordId, SourceId, Value};

    let records: Vec<Record> = (0..300u64)
        .map(|i| {
            Record::from_pairs(
                SourceId(0),
                RecordId(i),
                vec![("name", Value::from(format!("Show Number{} Group{}", i, i % 11)))],
            )
        })
        .collect();
    let blocker = Blocker::new("name", BlockingStrategy::Token);
    let scorer = PairScorer::Rules(RecordSimilarity::default());

    let job = || {
        let candidates = blocker.candidates(&records);
        let accepted = accepted_pairs(&scorer, &records, &candidates, 0.75);
        (candidates, accepted)
    };
    let serial = ThreadPoolBuilder::new().num_threads(1).build().unwrap().install(job);
    let wide = ThreadPoolBuilder::new().num_threads(8).build().unwrap().install(job);
    assert_eq!(serial, wide, "blocking + scoring must not depend on thread count");
    assert!(!serial.0.is_empty());
}
