//! Integration test for the Tables I–III shape claims at reduced scale:
//! collection statistics ratios and the entity-type histogram.

use datatamer::core::{DataTamer, DataTamerConfig};
use datatamer::corpus::webtext::{WebTextConfig, WebTextCorpus};
use datatamer::text::{DomainParser, EntityType};

fn build(fragments: usize, background: usize) -> DataTamer {
    let corpus = WebTextCorpus::generate(&WebTextConfig {
        num_fragments: fragments,
        background_mentions: background,
        padding_sentences: 8,
        ..Default::default()
    });
    let mut dt = DataTamer::new(DataTamerConfig {
        extent_size: 128 * 1024,
        ..Default::default()
    });
    let parser = DomainParser::with_gazetteer(corpus.gazetteer.clone());
    let frags: Vec<(&str, &str)> = corpus
        .fragments
        .iter()
        .map(|f| (f.text.as_str(), f.kind.label()))
        .collect();
    dt.ingest_webtext(parser, frags).unwrap();
    dt
}

#[test]
fn tables_i_ii_shape_holds() {
    let dt = build(800, 9);
    let instance = dt.collection_stats("instance").expect("instance");
    let entity = dt.collection_stats("entity").expect("entity");

    // Index layout matches the paper exactly.
    assert_eq!(instance.nindexes, 1, "Table I nindexes");
    assert_eq!(entity.nindexes, 8, "Table II nindexes");

    // Entities outnumber instances by roughly the paper's ~10x factor.
    let ratio = entity.count as f64 / instance.count as f64;
    assert!((5.0..=20.0).contains(&ratio), "entities/instances ratio {ratio:.1}");

    // Both collections span multiple extents (sharded, chained storage).
    assert!(instance.num_extents > 1);
    assert!(entity.num_extents > 1);

    // Entity index mass dwarfs instance index mass (paper: 59 GB vs 0.7 GB).
    assert!(
        entity.total_index_size > 5 * instance.total_index_size,
        "index-size contrast: {} vs {}",
        entity.total_index_size,
        instance.total_index_size
    );

    // Instance documents are much larger than entity documents
    // (web-page excerpts vs small entity rows).
    assert!(
        instance.avg_obj_size > 4.0 * entity.avg_obj_size,
        "doc-size contrast: {:.0} vs {:.0}",
        instance.avg_obj_size,
        entity.avg_obj_size
    );
}

#[test]
fn table_iii_histogram_tracks_paper_proportions() {
    let dt = build(1_500, 9);
    let histogram = dt.entity_histogram().unwrap();
    let total: u64 = histogram.iter().map(|(_, n)| n).sum();
    assert!(total > 5_000, "enough extracted entities: {total}");

    let share = |name: &str| -> f64 {
        histogram
            .iter()
            .find(|(t, _)| t == name)
            .map(|(_, n)| *n as f64 / total as f64)
            .unwrap_or(0.0)
    };
    // Person and OrgEntity dominate, as in Table III (26.3% / 22.7%).
    assert!(share("Person") > 0.15, "Person share {:.3}", share("Person"));
    assert!(share("OrgEntity") > 0.12, "OrgEntity share {:.3}", share("OrgEntity"));
    // Rare tail types stay rare.
    assert!(share("ProvinceOrState") < 0.02);
    assert!(share("Technology") < 0.03);
    // Rank agreement on the dominant types: Person must outnumber
    // every type the paper ranks below OrgEntity.
    let person = share("Person");
    for t in ["GeoEntity", "URL", "Position", "Company", "Product", "City"] {
        assert!(person > share(t), "Person must outrank {t}");
    }
    // All 15 paper types are representable; at this scale at least 12 appear.
    assert!(histogram.len() >= 12, "types seen: {}", histogram.len());
    for (name, _) in &histogram {
        assert!(
            EntityType::from_name(name).is_some(),
            "unknown type in histogram: {name}"
        );
    }
}

#[test]
fn text_cleaning_is_observable_in_stats() {
    // Inject junk fragments and verify the ML cleaner drops them pre-parse.
    let corpus = WebTextCorpus::generate(&WebTextConfig {
        num_fragments: 50,
        ..Default::default()
    });
    let mut frags: Vec<(&str, &str)> = corpus
        .fragments
        .iter()
        .map(|f| (f.text.as_str(), f.kind.label()))
        .collect();
    let junk = [
        "click here to subscribe to our newsletter and accept cookies now",
        "advertisement sponsored content buy now limited offer free shipping",
        "sign up login register forgot password terms of service",
    ];
    for j in junk {
        frags.push((j, "spam"));
    }
    let mut dt = DataTamer::new(DataTamerConfig::default());
    let parser = DomainParser::with_gazetteer(corpus.gazetteer.clone());
    let stats = dt.ingest_webtext(parser, frags).unwrap();
    assert!(stats.fragments_dropped >= 3, "junk dropped: {}", stats.fragments_dropped);
    assert_eq!(
        stats.instances as usize,
        stats.fragments_seen - stats.fragments_dropped
    );
}
