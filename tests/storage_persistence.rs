//! Integration test: the text-side collections survive a save/load cycle
//! with indexes and statistics intact (the paper's collections are durable
//! distributed storage; ours persists to extent files).

use std::fs;

use datatamer::core::ingest::TextIngestor;
use datatamer::model::{SourceId, Value};
use datatamer::storage::persist::{load_store, save_store};
use datatamer::storage::{CollectionConfig, Filter, Query, Store};
use datatamer::text::{DomainParser, EntityType, Gazetteer};

fn tempdir(tag: &str) -> std::path::PathBuf {
    // Tests in one binary run concurrently and share a PID: the tag keeps
    // their directories disjoint.
    let dir = std::env::temp_dir().join(format!("dt_it_persist_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[test]
fn ingested_collections_roundtrip_through_disk() {
    let store = Store::new("dt");
    let mut gazetteer = Gazetteer::new();
    gazetteer.add("Matilda", EntityType::Movie, 0.95);
    gazetteer.add("Wicked", EntityType::Movie, 0.95);
    gazetteer.add("London", EntityType::City, 0.9);
    let ingestor = TextIngestor::new(DomainParser::with_gazetteer(gazetteer));
    let config = CollectionConfig { extent_size: 8 * 1024, shards: 4, ..Default::default() };
    let fragments = [
        ("Matilda an award-winning import from London grossed 960,998", "news"),
        ("Wicked still sells out on Broadway nightly", "blog"),
        ("Matilda tickets from $27 this weekend", "twitter"),
    ];
    let (stats, _) = ingestor.ingest(&store, config, SourceId(0), fragments).unwrap();
    assert_eq!(stats.instances, 3);

    let dir = tempdir("roundtrip");
    save_store(&store, &dir).expect("save");

    let restored = load_store("dt", &dir).expect("load");
    assert_eq!(restored.collection_names(), vec!["entity", "instance"]);

    // Stats match (count, extents, index count, measured index sizes).
    for name in ["instance", "entity"] {
        let before = store.stats(name).unwrap();
        let after = restored.stats(name).unwrap();
        assert_eq!(before.count, after.count, "{name} count");
        assert_eq!(before.num_extents, after.num_extents, "{name} extents");
        assert_eq!(before.nindexes, after.nindexes, "{name} indexes");
        assert_eq!(before.total_index_size, after.total_index_size, "{name} index bytes");
        assert_eq!(before.data_size, after.data_size, "{name} data bytes");
    }

    // Queries behave identically post-restore (index-backed lookup).
    let entity = restored.collection("entity").unwrap();
    let matildas = Query::filtered(Filter::Eq("canonical".into(), Value::from("matilda")))
        .execute(&entity).unwrap();
    assert_eq!(matildas.len(), 2, "two fragments mention Matilda");
    let by_index = entity
        .with_index("by_canonical", |i| i.lookup(&Value::from("matilda")))
        .unwrap();
    assert_eq!(by_index.len(), 2);

    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn store_survives_partial_collection_sets() {
    let store = Store::new("dt");
    let col = store
        .create_collection("only", CollectionConfig { extent_size: 4096, shards: 2, ..Default::default() })
        .unwrap();
    for i in 0..10i64 {
        let mut d = datatamer::model::Document::new();
        d.set("i", Value::Int(i));
        col.insert(&d).unwrap();
    }
    let dir = tempdir("partial");
    save_store(&store, &dir).expect("save");
    let restored = load_store("dt", &dir).expect("load");
    assert_eq!(restored.collection("only").unwrap().len(), 10);
    assert!(restored.collection("missing").is_none());
    fs::remove_dir_all(&dir).unwrap();
}
