//! Integration test for experiment M1: the dedup classifier's 10-fold
//! cross-validation precision/recall per entity type (§IV of the paper:
//! "89/90% precision/recall by 10-fold crossvalidation on several different
//! types of entities from the web-text dataset").
//!
//! The paper's absolute numbers came from Recorded Future's corpus; our dirt
//! model is calibrated so the measured band is comparable (see DESIGN.md §2
//! and EXPERIMENTS.md for paper-vs-measured values).

use datatamer::corpus::truth::{labeled_pairs, labeled_pairs_with, PairDifficulty, DEDUP_EVAL_TYPES};
use datatamer::ml::dedup::crossval_dedup;
use datatamer::ml::logreg::LogRegConfig;

#[test]
fn ten_fold_crossval_lands_in_paper_band_per_type() {
    let mut psum = 0.0;
    let mut rsum = 0.0;
    for ty in DEDUP_EVAL_TYPES {
        let pairs: Vec<(String, String, bool)> =
            labeled_pairs_with(ty, 1_000, 42, PairDifficulty::paper_band())
                .into_iter()
                .map(|p| (p.a, p.b, p.same))
                .collect();
        let report = crossval_dedup(&pairs, 10, 7, &LogRegConfig::default());
        let m = report.metrics();
        assert!(
            m.precision >= 0.80,
            "{ty:?}: precision {:.3} below floor ({m})",
            m.precision
        );
        assert!(m.recall >= 0.80, "{ty:?}: recall {:.3} below floor ({m})", m.recall);
        assert_eq!(report.fold_matrices.len(), 10);
        psum += m.precision;
        rsum += m.recall;
    }
    // Macro averages sit near the paper's 89/90%.
    let p = psum / DEDUP_EVAL_TYPES.len() as f64;
    let r = rsum / DEDUP_EVAL_TYPES.len() as f64;
    assert!((0.84..=0.97).contains(&p), "macro precision {p:.3}");
    assert!((0.84..=0.97).contains(&r), "macro recall {r:.3}");
}

#[test]
fn harder_dirt_degrades_but_does_not_collapse() {
    let ty = datatamer::text::EntityType::Person;
    let clean: Vec<_> = labeled_pairs(ty, 600, 1, 0.6, false)
        .into_iter()
        .map(|p| (p.a, p.b, p.same))
        .collect();
    let dirty: Vec<_> = labeled_pairs(ty, 600, 1, 0.6, true)
        .into_iter()
        .map(|p| (p.a, p.b, p.same))
        .collect();
    let m_clean = crossval_dedup(&clean, 10, 3, &LogRegConfig::default()).metrics();
    let m_dirty = crossval_dedup(&dirty, 10, 3, &LogRegConfig::default()).metrics();
    // At this calibration both settings land near 0.98 F1 and the gap sits
    // inside cross-validation noise (±0.005 across seeds), so the claim is
    // one-sided with a noise margin: dirt must never *help* beyond noise.
    assert!(
        m_clean.f1 >= m_dirty.f1 - 0.01,
        "extra dirt must not improve F1: clean {:.4} vs dirty {:.4}",
        m_clean.f1,
        m_dirty.f1
    );
    assert!(m_dirty.f1 > 0.6, "even dirty pairs stay learnable: {m_dirty}");
}
