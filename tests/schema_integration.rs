//! Integration tests for schema integration against generator ground truth:
//! matching accuracy, expert-panel effects, and threshold behaviour
//! (Figs 2–3).

use datatamer::core::ExpertPanelResolver;
use datatamer::corpus::ftables::{self, FtablesConfig};
use datatamer::corpus::truth::GroundTruth;
use datatamer::model::{AttrId, SourceSchema};
use datatamer::schema::{
    CompositeMatcher, Decision, IntegrationConfig, SchemaIntegrator,
};

fn sources() -> Vec<ftables::GeneratedSource> {
    ftables::generate(&FtablesConfig::default(), 0)
}

/// Integrate all sources, tracking each global attribute's canonical
/// identity via ground truth; returns (correct, wrong, new) mapping counts.
fn run_and_grade(
    integrator: &mut SchemaIntegrator,
    srcs: &[ftables::GeneratedSource],
    resolver: Option<&mut ExpertPanelResolver>,
) -> (usize, usize, usize) {
    let gt = GroundTruth::from_sources(srcs);
    let mut canon: std::collections::HashMap<AttrId, &'static str> = Default::default();
    let (mut correct, mut wrong, mut created) = (0, 0, 0);
    let mut resolver = resolver;
    for s in srcs {
        let schema = SourceSchema::profile_records(s.id, &s.name, &s.records);
        let report = match resolver.as_deref_mut() {
            Some(r) => integrator.integrate_with(&schema, r),
            None => integrator.integrate(&schema),
        };
        for sugg in &report.suggestions {
            let truth_canon = gt.canonical_of(&s.name, &sugg.source_attr);
            match sugg.decision.mapped_attr() {
                Some(id) => {
                    if canon.get(&id).copied() == truth_canon {
                        correct += 1;
                    } else {
                        wrong += 1;
                    }
                }
                None => {
                    created += 1;
                    if let (Some(tc), Some(g)) =
                        (truth_canon, integrator.global().by_name(&sugg.source_attr))
                    {
                        canon.entry(g.id).or_insert(tc);
                    }
                }
            }
        }
    }
    (correct, wrong, created)
}

#[test]
fn threshold_only_integration_is_mostly_correct() {
    let srcs = sources();
    let mut integrator = SchemaIntegrator::broadway();
    let (correct, wrong, created) = run_and_grade(&mut integrator, &srcs, None);
    let mapped = correct + wrong;
    assert!(mapped > 80, "enough mappings to grade: {mapped}");
    let accuracy = correct as f64 / mapped as f64;
    assert!(accuracy > 0.85, "mapping accuracy {accuracy:.3} ({correct}/{mapped})");
    assert!(created < 20, "schema must not proliferate: {created} creations");
}

#[test]
fn perfect_experts_beat_threshold_only_on_wrong_mappings() {
    let srcs = sources();

    let mut plain = SchemaIntegrator::broadway();
    let (_, wrong_plain, _) = run_and_grade(&mut plain, &srcs, None);

    // Expert panel with ground-truth oracle at 100% accuracy. Truth closure
    // compares candidate canonical identity via a shared mutable map filled
    // the same way run_and_grade fills it — here we re-derive it by name:
    // global attribute names are source spellings, so their canonical is
    // whatever ground truth says about the (seed-source, spelling) pair.
    let gt = GroundTruth::from_sources(&srcs);
    let name_canon: std::collections::HashMap<String, &'static str> = gt
        .attr_mappings
        .iter()
        .map(|((_, attr), canon)| (attr.clone(), *canon))
        .collect();
    let gt_map = gt.attr_mappings.clone();
    let truth = Box::new(move |attr: &str, candidate: &str| {
        let truth_canon = gt_map
            .iter()
            .find(|((_, a), _)| a == attr)
            .map(|(_, c)| *c);
        match (truth_canon, name_canon.get(candidate)) {
            (Some(t), Some(c)) => t == *c,
            _ => false,
        }
    });
    let mut panel = ExpertPanelResolver::homogeneous(3, 1.0, 1.0, 5, truth);
    let mut assisted = SchemaIntegrator::broadway();
    let (_, wrong_assisted, _) = run_and_grade(&mut assisted, &srcs, Some(&mut panel));

    assert!(
        wrong_assisted <= wrong_plain,
        "perfect experts must not increase wrong mappings: {wrong_assisted} vs {wrong_plain}"
    );
    assert!(panel.stats().escalations > 0, "panel must have been consulted");
}

#[test]
fn stricter_threshold_trades_recall_for_precision() {
    let srcs = sources();
    let strict = IntegrationConfig { accept_threshold: 0.95, ..Default::default() };
    let lax = IntegrationConfig { accept_threshold: 0.60, escalate_threshold: 0.55, ..Default::default() };

    let count_autos = |config: IntegrationConfig| {
        let mut integ = SchemaIntegrator::new(CompositeMatcher::broadway(), config);
        let mut autos = 0usize;
        for s in &srcs {
            let schema = SourceSchema::profile_records(s.id, &s.name, &s.records);
            let report = integ.integrate(&schema);
            autos += report.auto_accepted();
        }
        autos
    };
    let strict_autos = count_autos(strict);
    let lax_autos = count_autos(lax);
    assert!(
        strict_autos < lax_autos,
        "raising the threshold must reduce auto-accepts: {strict_autos} vs {lax_autos}"
    );
}

#[test]
fn integration_order_does_not_blow_up_schema() {
    let srcs = sources();
    // Reverse order: dirty-spelling sources first (the seed source with
    // clean canonical names arrives last).
    let mut reversed: Vec<_> = srcs.clone();
    reversed.reverse();
    let mut integ = SchemaIntegrator::broadway();
    for s in &reversed {
        let schema = SourceSchema::profile_records(s.id, &s.name, &s.records);
        integ.integrate(&schema);
    }
    let n = integ.global().len();
    assert!(
        (10..=20).contains(&n),
        "order-robust convergence: {n} attrs ({:?})",
        integ.global().attribute_names()
    );
}

#[test]
fn suggestions_expose_fig3_scores() {
    let srcs = sources();
    let mut integ = SchemaIntegrator::broadway();
    for s in &srcs[..10] {
        let schema = SourceSchema::profile_records(s.id, &s.name, &s.records);
        integ.integrate(&schema);
    }
    // Fig 3's content: per-attribute ranked candidates with scores.
    let schema = SourceSchema::profile_records(srcs[10].id, &srcs[10].name, &srcs[10].records);
    let scored = integ.dry_run(&schema);
    assert_eq!(scored.len(), schema.arity());
    for (attr, candidates) in &scored {
        assert!(!candidates.is_empty(), "{attr} got no candidates from a mature schema");
        for w in candidates.windows(2) {
            assert!(w[0].score >= w[1].score, "candidates must rank by score");
        }
        for c in candidates {
            assert!((0.0..=1.0).contains(&c.score));
        }
    }
    // Decision taxonomy is visible in reports.
    let report = integ.integrate(&schema);
    for s in &report.suggestions {
        match &s.decision {
            Decision::AutoAccept { score, .. } => assert!(*score >= 0.8),
            Decision::ExpertAccept { score, .. } => assert!(*score < 0.8),
            _ => {}
        }
    }
}
