//! Conflict-scenario corpus for the truth-discovery resolver registry.
//!
//! A table of canonical conflict shapes — agreeing sources, 2-vs-1 splits,
//! stale-vs-fresh values, genuine multi-truth attributes — each resolved by
//! the built-in resolver the shape exercises, with the expected survivor(s)
//! pinned. A second half drives the same registry machinery through the
//! full staged pipeline to assert per-attribute dispatch end to end.

use datatamer::core::fusion::{
    fuse_records_with, FusionPolicy, RegistryConfig, ResolverRegistry, ResolverSpec,
};
use datatamer::core::{DataTamer, DataTamerConfig, PipelinePlan};
use datatamer::entity::ConflictPolicy;
use datatamer::model::{Record, RecordId, SourceId, Value};

/// What a scenario expects to survive for the conflicted attribute.
enum Expect {
    /// One value (scalar in the composite).
    Single(&'static str),
    /// Several values (a `Value::Array` in the composite, in this order).
    Multi(&'static [&'static str]),
}

/// One conflict scenario: provenanced values for a single attribute, the
/// resolver under test, and the expected survivor(s).
struct Scenario {
    name: &'static str,
    resolver: ResolverSpec,
    /// `(value, source id, record id)` — listed in cluster order.
    values: &'static [(&'static str, u32, u64)],
    expect: Expect,
}

const ATTR: &str = "VERDICT";

fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "agreeing_sources_majority",
            resolver: ResolverSpec::MajorityVote,
            values: &[("$27", 0, 0), ("$27", 1, 1), ("$27", 2, 2)],
            expect: Expect::Single("$27"),
        },
        Scenario {
            name: "agreeing_sources_reliability",
            resolver: ResolverSpec::SourceReliability { iterations: 5 },
            values: &[("$27", 0, 0), ("$27", 1, 1), ("$27", 2, 2)],
            expect: Expect::Single("$27"),
        },
        Scenario {
            name: "two_vs_one_majority",
            resolver: ResolverSpec::MajorityVote,
            values: &[("$27", 0, 0), ("$27", 1, 1), ("$99", 2, 2)],
            expect: Expect::Single("$27"),
        },
        Scenario {
            name: "two_vs_one_reliability_weights_the_agreeing_pair",
            resolver: ResolverSpec::SourceReliability { iterations: 5 },
            values: &[("$99", 0, 0), ("$27", 1, 1), ("$27", 2, 2)],
            expect: Expect::Single("$27"),
        },
        Scenario {
            name: "even_split_majority_ties_lexicographically",
            resolver: ResolverSpec::MajorityVote,
            values: &[("beta", 0, 0), ("alpha", 1, 1)],
            expect: Expect::Single("alpha"),
        },
        Scenario {
            name: "stale_vs_fresh_latest_wins",
            resolver: ResolverSpec::LatestWins,
            values: &[("closed", 0, 5), ("open", 0, 9)],
            expect: Expect::Single("open"),
        },
        Scenario {
            name: "latest_wins_orders_by_record_before_source",
            resolver: ResolverSpec::LatestWins,
            values: &[("older", 2, 3), ("newer", 1, 7)],
            expect: Expect::Single("newer"),
        },
        Scenario {
            name: "latest_wins_ignores_majority",
            resolver: ResolverSpec::LatestWins,
            values: &[("old", 0, 0), ("old", 1, 1), ("fresh", 2, 9)],
            expect: Expect::Single("fresh"),
        },
        Scenario {
            name: "genuine_multi_truth_keeps_both",
            resolver: ResolverSpec::MultiTruth { min_support: 0.4 },
            values: &[("PG", 0, 0), ("PG-13", 1, 1), ("PG", 2, 2), ("PG-13", 3, 3)],
            expect: Expect::Multi(&["PG", "PG-13"]),
        },
        Scenario {
            name: "multi_truth_drops_the_lone_outlier",
            resolver: ResolverSpec::MultiTruth { min_support: 0.3 },
            values: &[("red", 0, 0), ("red", 1, 1), ("red", 2, 2), ("typo", 3, 3)],
            expect: Expect::Single("red"),
        },
        Scenario {
            name: "multi_truth_orders_by_support_then_text",
            resolver: ResolverSpec::MultiTruth { min_support: 0.2 },
            values: &[("b", 0, 0), ("a", 1, 1), ("b", 2, 2), ("c", 3, 3)],
            expect: Expect::Multi(&["b", "a", "c"]),
        },
        Scenario {
            name: "classic_first_policy_respects_cluster_order",
            resolver: ResolverSpec::Policy(ConflictPolicy::First),
            values: &[("curated", 0, 0), ("scraped", 1, 1)],
            expect: Expect::Single("curated"),
        },
        Scenario {
            name: "classic_numeric_min_policy",
            resolver: ResolverSpec::Policy(ConflictPolicy::NumericMin),
            values: &[("$45", 0, 0), ("$27", 1, 1), ("$99.50", 2, 2)],
            expect: Expect::Single("$27"),
        },
    ]
}

/// Records for one scenario: every member shares the show name so they
/// group into one entity, carrying the conflicted attribute.
fn scenario_records(s: &Scenario) -> Vec<Record> {
    s.values
        .iter()
        .map(|(value, source, record)| {
            Record::from_pairs(
                SourceId(*source),
                RecordId(*record),
                vec![("SHOW_NAME", Value::from("Hamlet")), (ATTR, Value::from(*value))],
            )
        })
        .collect()
}

fn expected_value(expect: &Expect) -> Value {
    match expect {
        Expect::Single(v) => Value::from(*v),
        Expect::Multi(vs) => Value::Array(vs.iter().map(|v| Value::from(*v)).collect()),
    }
}

#[test]
fn conflict_corpus_resolves_as_pinned() {
    for s in scenarios() {
        let registry = RegistryConfig::uniform(ResolverSpec::MajorityVote)
            .with(ATTR, s.resolver.clone())
            .build();
        let records = scenario_records(&s);
        let fused =
            fuse_records_with(&records, &FusionPolicy::Fuzzy { threshold: 0.88 }, &registry);
        assert_eq!(fused.len(), 1, "{}: one conflicted entity", s.name);
        assert_eq!(fused[0].member_count, s.values.len(), "{}", s.name);
        assert_eq!(
            fused[0].record.get(ATTR),
            Some(&expected_value(&s.expect)),
            "scenario {}",
            s.name
        );
        // The default resolver is MajorityVote, which always quantifies its
        // decision — so every scenario's entity carries a confidence, and a
        // valid one.
        let confidence = fused[0]
            .confidence
            .unwrap_or_else(|| panic!("{}: majority-voted entity must carry confidence", s.name));
        assert!(
            (0.0..=1.0).contains(&confidence),
            "{}: confidence {confidence} out of range",
            s.name
        );
    }
}

#[test]
fn resolution_is_insensitive_to_record_order_for_order_free_resolvers() {
    for s in scenarios() {
        if matches!(s.resolver, ResolverSpec::Policy(_)) {
            continue; // classic policies are deliberately order-sensitive
        }
        let registry = RegistryConfig::uniform(ResolverSpec::MajorityVote)
            .with(ATTR, s.resolver.clone())
            .build();
        let mut records = scenario_records(&s);
        records.reverse();
        let fused =
            fuse_records_with(&records, &FusionPolicy::Fuzzy { threshold: 0.88 }, &registry);
        assert_eq!(
            fused[0].record.get(ATTR),
            Some(&expected_value(&s.expect)),
            "scenario {} reversed",
            s.name
        );
    }
}

#[test]
fn registry_dispatches_each_attribute_to_its_own_resolver() {
    // One fused entity whose attributes route to four different resolvers.
    let registry = RegistryConfig::uniform(ResolverSpec::MajorityVote)
        .with("STATUS", ResolverSpec::LatestWins)
        .with("RATING", ResolverSpec::MultiTruth { min_support: 0.4 })
        .with("PRICE", ResolverSpec::Policy(ConflictPolicy::NumericMin))
        .with("VENUE", ResolverSpec::SourceReliability { iterations: 5 })
        .build();
    let (rows, default) = registry.dispatch_table();
    assert_eq!(
        rows,
        vec![
            ("STATUS", "latest_wins"),
            ("RATING", "multi_truth"),
            ("PRICE", "policy:numeric_min"),
            ("VENUE", "source_reliability"),
        ]
    );
    assert_eq!(default, "majority_vote");

    let mk = |src: u32, id: u64, status: &str, rating: &str, price: &str, venue: &str| {
        Record::from_pairs(
            SourceId(src),
            RecordId(id),
            vec![
                ("SHOW_NAME", Value::from("Pippin")),
                ("STATUS", Value::from(status)),
                ("RATING", Value::from(rating)),
                ("PRICE", Value::from(price)),
                ("VENUE", Value::from(venue)),
            ],
        )
    };
    let records = vec![
        mk(0, 0, "previews", "PG", "$45", "Music Box"),
        mk(1, 1, "previews", "PG-13", "$27", "Music Box"),
        mk(2, 2, "open", "PG", "$99", "Musik Box"),
        mk(3, 3, "open", "PG-13", "$31", "Music Box"),
    ];
    let fused = fuse_records_with(&records, &FusionPolicy::Fuzzy { threshold: 0.88 }, &registry);
    assert_eq!(fused.len(), 1);
    let r = &fused[0].record;
    assert_eq!(r.get_text("STATUS").as_deref(), Some("open"), "latest record wins");
    assert_eq!(
        r.get("RATING"),
        Some(&Value::Array(vec![Value::from("PG"), Value::from("PG-13")])),
        "both ratings genuinely hold"
    );
    assert_eq!(r.get_text("PRICE").as_deref(), Some("$27"), "numeric minimum");
    assert_eq!(
        r.get_text("VENUE").as_deref(),
        Some("Music Box"),
        "three agreeing sources outweigh the typo"
    );
    assert_eq!(r.get_text("SHOW_NAME").as_deref(), Some("Pippin"), "default resolver");
}

#[test]
fn per_attribute_dispatch_survives_the_full_staged_pipeline() {
    // Same registry idea, but configured on the PipelinePlan and pushed
    // through ingest → schema integration → cleaning → consolidation →
    // fusion. Source attributes arrive lowercase and are canonicalised to
    // upper case by schema integration, so the registry routes the
    // canonical spellings.
    let mk = |src: u32, id: u64, status: &str, rating: &str| {
        Record::from_pairs(
            SourceId(src),
            RecordId(id),
            vec![
                ("show_name", Value::from("Pippin")),
                ("status", Value::from(status)),
                ("rating", Value::from(rating)),
            ],
        )
    };
    let a = vec![mk(0, 0, "previews", "PG"), mk(0, 1, "previews", "PG-13")];
    let b = vec![mk(1, 0, "open", "PG"), mk(1, 1, "open", "PG-13")];

    let mut dt = DataTamer::new(DataTamerConfig {
        extent_size: 64 * 1024,
        shards: 2,
        ..Default::default()
    });
    let plan = PipelinePlan::new()
        .structured("season_a", &a)
        .structured("season_b", &b)
        .resolvers(
            RegistryConfig::broadway()
                .with("STATUS", ResolverSpec::LatestWins)
                .with("RATING", ResolverSpec::MultiTruth { min_support: 0.4 }),
        );
    dt.run(plan).expect("pipeline runs");

    let fused = &dt.context().fused;
    assert_eq!(fused.len(), 1, "one show across both sources");
    let r = &fused[0].record;
    assert_eq!(
        r.get_text("STATUS").as_deref(),
        Some("open"),
        "latest record id wins the status conflict"
    );
    assert_eq!(
        r.get("RATING"),
        Some(&Value::Array(vec![Value::from("PG"), Value::from("PG-13")])),
        "multi-truth attribute keeps both ratings through the pipeline"
    );
    assert_eq!(r.get_text("SHOW_NAME").as_deref(), Some("Pippin"));
}

#[test]
fn default_registry_without_override_matches_legacy_fusion() {
    use datatamer::core::fusion::fuse_records;
    for s in scenarios() {
        let records = scenario_records(&s);
        let policy = FusionPolicy::Fuzzy { threshold: 0.88 };
        let legacy = fuse_records(&records, &policy);
        let via_registry = fuse_records_with(&records, &policy, &ResolverRegistry::broadway());
        let legacy_blob: Vec<String> = legacy
            .iter()
            .map(|f| format!("{}|{}|{:?}", f.key, f.member_count, f.record))
            .collect();
        let registry_blob: Vec<String> = via_registry
            .iter()
            .map(|f| format!("{}|{}|{:?}", f.key, f.member_count, f.record))
            .collect();
        assert_eq!(legacy_blob, registry_blob, "{}", s.name);
    }
}
