//! End-to-end coverage of the `GroupingStrategy` seam: the staged pipeline
//! consolidating fuzzy duplicates through blocked ER (blocking →
//! pair scoring → union-find), with blocking health surfaced in the stage
//! report and progressive blocking keeping oversized buckets connected.

use datatamer::core::fusion::{BlockedErConfig, GroupingStrategy, ScorerSpec};
use datatamer::core::stage::{stage_names, StageReport};
use datatamer::core::{DataTamer, DataTamerConfig, PipelinePlan};
use datatamer::entity::BlockingStrategy;
use datatamer::model::{Record, RecordId, SourceId, Value};

fn config_with(grouping: GroupingStrategy) -> DataTamerConfig {
    DataTamerConfig {
        extent_size: 64 * 1024,
        shards: 2,
        grouping,
        ..Default::default()
    }
}

/// Sources describing the same shows with word-order damage and price
/// agreement — beyond what canonical-name fuzzy attachment can unify.
fn damaged_sources() -> (Vec<Record>, Vec<Record>) {
    let clean = vec![
        Record::from_pairs(
            SourceId(0),
            RecordId(0),
            vec![
                ("show_name", Value::from("Walking Dead")),
                ("cheapest_price", Value::from("$27")),
            ],
        ),
        Record::from_pairs(
            SourceId(0),
            RecordId(1),
            vec![
                ("show_name", Value::from("Matilda")),
                ("cheapest_price", Value::from("$45")),
            ],
        ),
    ];
    let damaged = vec![
        Record::from_pairs(
            SourceId(1),
            RecordId(0),
            vec![
                ("show_name", Value::from("Dead Walking")),
                ("cheapest_price", Value::from("$27")),
            ],
        ),
        Record::from_pairs(
            SourceId(1),
            RecordId(1),
            vec![
                ("show_name", Value::from("Matilda")),
                ("cheapest_price", Value::from("$39")),
            ],
        ),
    ];
    (clean, damaged)
}

#[test]
fn config_level_blocked_er_consolidates_fuzzy_duplicates_end_to_end() {
    let (clean, damaged) = damaged_sources();

    // Canonical-name grouping splits the word-order pair: 3 entities.
    let mut dt = DataTamer::new(config_with(GroupingStrategy::CanonicalName));
    dt.run(PipelinePlan::new().structured("clean", &clean).structured("damaged", &damaged))
        .unwrap();
    assert_eq!(dt.context().fused.len(), 3);

    // Blocked ER configured system-wide (no plan override needed): the
    // damaged duplicate joins its entity, and the cheapest price across
    // both sources survives fusion.
    let mut dt = DataTamer::new(config_with(GroupingStrategy::BlockedEr(
        BlockedErConfig::default(),
    )));
    let fused = dt
        .run(PipelinePlan::new().structured("clean", &clean).structured("damaged", &damaged))
        .unwrap();
    assert_eq!(fused.len(), 2, "walking dead + matilda");
    let walking = DataTamer::lookup(fused, "Walking Dead").expect("consolidated entity");
    assert_eq!(walking.member_count, 2);
    let matilda = DataTamer::lookup(fused, "Matilda").expect("exact duplicate still fuses");
    assert_eq!(matilda.member_count, 2);
    assert_eq!(
        matilda.record.get_text("CHEAPEST_PRICE").as_deref(),
        Some("$39"),
        "NumericMin resolver sees both sources' prices"
    );

    // The stage report carries the blocking health of the run.
    match dt.context().report_of(stage_names::ENTITY_CONSOLIDATION).unwrap() {
        StageReport::EntityConsolidation { records, groups, blocking, .. } => {
            assert_eq!(*records, 4);
            assert_eq!(*groups, 2);
            assert!(blocking.candidate_pairs >= 2);
            assert_eq!(blocking.accepted_pairs, 2);
            assert_eq!(blocking.degraded_buckets, 0);
        }
        other => panic!("wrong report variant: {other:?}"),
    }

    // Ad-hoc re-fusion agrees with the configured grouping.
    assert_eq!(dt.fuse().len(), 2);
}

#[test]
fn oversized_bucket_stays_connected_through_the_staged_pipeline() {
    // Every show shares the token "show", blowing the 256-member bucket
    // cap, with one duplicate pair planted entirely beyond it. Progressive
    // blocking (the default fallback) must still consolidate the pair, and
    // the degradation must surface in the stage report. The venue is
    // unique per show except for the planted pair, and the scorer weights
    // it heavily, so only the true duplicates clear the threshold.
    let mut rows: Vec<Record> = (0..600u64)
        .map(|i| {
            Record::from_pairs(
                SourceId(0),
                RecordId(i),
                vec![
                    ("show_name", Value::from(format!("show number{i:03}"))),
                    ("venue", Value::from(format!("house of stage {i:03}"))),
                    ("cheapest_price", Value::from("$10")),
                ],
            )
        })
        .collect();
    let plant = |row: &mut Record, name: &str| {
        row.set("show_name", Value::from(name));
        row.set("venue", Value::from("the planted duplicate venue"));
    };
    plant(&mut rows[400], "show zzdupx1");
    plant(&mut rows[599], "show zzdupx2");

    let grouping = GroupingStrategy::BlockedEr(BlockedErConfig {
        key_attr: "SHOW_NAME".to_owned(),
        strategy: BlockingStrategy::Token,
        scorer: ScorerSpec::Rules {
            weights: vec![("VENUE".to_owned(), 5.0)],
            default_weight: 1.0,
        },
        accept_threshold: 0.8,
        ..Default::default()
    });
    let mut dt = DataTamer::new(config_with(grouping));
    let fused = dt.run(PipelinePlan::new().structured("s1", &rows)).unwrap();

    let dup = fused
        .iter()
        .find(|f| f.key.starts_with("show zzdupx"))
        .expect("planted duplicate entity");
    assert_eq!(
        dup.member_count, 2,
        "the beyond-cap duplicate pair must consolidate into one entity"
    );
    match dt.context().report_of(stage_names::ENTITY_CONSOLIDATION).unwrap() {
        StageReport::EntityConsolidation { blocking, .. } => {
            assert_eq!(blocking.degraded_buckets, 1, "the 'show' bucket degradation is announced");
            assert!(
                blocking.candidate_pairs < 600 * 599 / 2 / 3,
                "candidate volume stays far from quadratic: {}",
                blocking.candidate_pairs
            );
        }
        other => panic!("wrong report variant: {other:?}"),
    }
}
