//! The query-subsystem correctness pin: every plan the executor can pick
//! (hash probe, ordered probe, columnar scan, full scan) must produce a
//! result byte-identical to the naive sequential full-scan oracle, over
//! random corpora and random predicates, at any thread count — and a
//! [`CollectionView`] kept in sync *incrementally* across
//! `consolidate_delta` batches must serve exactly what a from-scratch
//! view serves, without ever rebuilding its indexes.

use datatamer::core::fusion::{BlockedErConfig, FusedEntity, GroupingStrategy};
use datatamer::core::{DataTamer, DataTamerConfig, PipelinePlan};
use datatamer::model::{Record, RecordId, SourceId, Value};
use datatamer::query::prelude::*;
use proptest::prelude::*;
use rayon::ThreadPoolBuilder;

/// Byte-exact fingerprint of a result: Debug is total (NaN prints as
/// `NaN`), whereas `Value`'s `PartialEq` is not (NaN != NaN), so equal
/// results containing NaN would spuriously differ under `==`.
fn fp(r: &QueryResult) -> String {
    format!("{r:?}")
}

// ---------------------------------------------------------------------
// Part A: random synthetic entities, random queries, every scan mode.
// ---------------------------------------------------------------------

/// One entity from a compact spec. The per-attribute pools deliberately
/// mix types (GENRE is mostly strings but sometimes an int, RATING is
/// mostly floats but sometimes an int) so columns exercise both the
/// typed and the `Mixed` layouts, and NaN/Null/absent are all reachable.
fn entity(i: usize, spec: (u8, u8, u8, u8, u8, u8)) -> FusedEntity {
    let (g, p, r, t, c, m) = spec;
    let mut pairs: Vec<(&str, Value)> = Vec::new();
    match g {
        0 => {}
        1 => pairs.push(("GENRE", Value::Null)),
        2 => pairs.push(("GENRE", Value::from("alpha"))),
        3 => pairs.push(("GENRE", Value::from("Beta"))),
        4 => pairs.push(("GENRE", Value::from("gamma ray"))),
        _ => pairs.push(("GENRE", Value::Int(7))),
    }
    match p {
        0 => {}
        1..=5 => pairs.push(("PRICE", Value::Int(i64::from(p) * 3 - 6))),
        6 => pairs.push(("PRICE", Value::Float(2.5))),
        _ => pairs.push(("PRICE", Value::Float(f64::NAN))),
    }
    match r {
        0 => {}
        1..=4 => pairs.push(("RATING", Value::Float(f64::from(r) / 2.0))),
        _ => pairs.push(("RATING", Value::Int(3))),
    }
    match t {
        0 => {}
        1 => pairs.push(("TAGS", Value::Array(vec![Value::from("x"), Value::Int(1)]))),
        2 => pairs.push(("TAGS", Value::Array(Vec::new()))),
        3 => pairs.push(("TAGS", Value::from("x"))),
        _ => pairs.push(("TAGS", Value::Array(vec![Value::from("y")]))),
    }
    FusedEntity {
        key: format!("k{i:03}"),
        record: Record::from_pairs(SourceId(0), RecordId(i as u64), pairs),
        member_count: usize::from(m),
        confidence: if c == 0 { None } else { Some(f64::from(c) / 4.0) },
    }
}

const ATTRS: [&str; 7] = ["GENRE", "PRICE", "RATING", "TAGS", "_key", "_members", "_confidence"];

fn operand(sel: u8) -> Value {
    match sel {
        0 => Value::Int(0),
        1 => Value::Int(3),
        2 => Value::Float(3.0),
        3 => Value::Float(1.25),
        4 => Value::from("alpha"),
        5 => Value::from("Beta"),
        6 => Value::Bool(true),
        7 => Value::Null,
        _ => Value::Float(f64::NAN),
    }
}

fn leaf(spec: (u8, u8, u8)) -> Predicate {
    let (attr_sel, op_sel, val_sel) = spec;
    let a = ATTRS[usize::from(attr_sel) % ATTRS.len()].to_string();
    let v = operand(val_sel);
    match op_sel {
        0 => Predicate::Eq(a, v),
        1 => Predicate::Ne(a, v),
        2 => Predicate::Gt(a, v),
        3 => Predicate::Gte(a, v),
        4 => Predicate::Lt(a, v),
        5 => Predicate::Lte(a, v),
        6 => Predicate::In(a, vec![v, operand(val_sel.wrapping_add(3) % 9)]),
        7 => Predicate::Contains(a, if val_sel % 2 == 0 { "a".into() } else { "gamma".into() }),
        8 => Predicate::Exists(a),
        _ => Predicate::True,
    }
}

fn predicate(leaves: &[(u8, u8, u8)], shape: u8) -> Predicate {
    let ps: Vec<Predicate> = leaves.iter().map(|&l| leaf(l)).collect();
    match shape {
        0 => ps[0].clone(),
        1 => Predicate::And(ps),
        2 => Predicate::Or(ps),
        3 => Predicate::Not(Box::new(ps[0].clone())),
        _ => {
            let (first, rest) = ps.split_first().unwrap();
            Predicate::And(vec![first.clone(), Predicate::Or(rest.to_vec())])
        }
    }
}

fn query(filter: Predicate, agg: u8, order: u8, limit: u8, project: u8) -> Query {
    let mut q = Query::filtered(filter);
    q = match agg {
        0 => q,
        1 => q.aggregate(Aggregate::Count),
        2 => q.aggregate(Aggregate::Sum("PRICE".into())),
        3 => q.aggregate(Aggregate::Min("RATING".into())),
        4 => q.aggregate(Aggregate::Max("PRICE".into())),
        _ => q.aggregate(Aggregate::GroupBy("GENRE".into())),
    };
    q = match order {
        0 => q,
        1 => q.order_by("PRICE", Order::Asc),
        2 => q.order_by("PRICE", Order::Desc),
        3 => q.order_by("_key", Order::Asc),
        _ => q.order_by("_confidence", Order::Desc),
    };
    if limit > 0 {
        q = q.take(usize::from(limit) - 1);
    }
    match project {
        0 => q,
        1 => q.project(vec!["GENRE", "PRICE"]),
        2 => q.project(vec!["_key", "_members", "_confidence"]),
        _ => q.project(vec!["PRICE", "TAGS", "RATING"]),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn every_plan_matches_the_oracle_at_any_thread_count(
        specs in prop::collection::vec((0u8..6, 0u8..8, 0u8..6, 0u8..5, 0u8..4, 1u8..4), 0..50),
        leaves in prop::collection::vec((0u8..14, 0u8..10, 0u8..9), 1..4),
        shape in 0u8..5,
        agg_sel in 0u8..6,
        order_sel in 0u8..5,
        limit_sel in 0u8..12,
        project_sel in 0u8..4,
    ) {
        let entities: Vec<FusedEntity> =
            specs.into_iter().enumerate().map(|(i, s)| entity(i, s)).collect();
        let q = query(predicate(&leaves, shape), agg_sel, order_sel, limit_sel, project_sel);
        let spec = IndexSpec::default()
            .hash_on("GENRE")
            .ordered_on("PRICE")
            .ordered_on("RATING");

        // The oracle: sequential filter over the raw entity slice.
        let want = fp(&execute_oracle(&entities, &q));

        for threads in [1usize, 8] {
            let pool = ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            let got: Vec<(String, String)> = pool.install(|| {
                // Snapshot assembly itself is parallel (columnar build,
                // index extraction) — run it inside the pool too.
                let snap = CollectionSnapshot::from_entities(entities.clone(), spec.clone());
                [ScanMode::Auto, ScanMode::Columnar, ScanMode::FullScan]
                    .into_iter()
                    .map(|mode| {
                        let ex = snap.execute_as(&q, mode);
                        (format!("{mode:?}"), fp(&ex.result))
                    })
                    .collect()
            });
            for (mode, have) in got {
                prop_assert_eq!(
                    &have, &want,
                    "{} plan diverged from the oracle at {} threads (query: {:?})",
                    mode, threads, q
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Part B: pipeline-fed views synced incrementally across delta batches.
// ---------------------------------------------------------------------

fn show(id: u64, name: &str, price: &str) -> Record {
    Record::from_pairs(
        SourceId(0),
        RecordId(id),
        vec![("SHOW_NAME", Value::from(name)), ("CHEAPEST_PRICE", Value::from(price))],
    )
}

fn config() -> DataTamerConfig {
    DataTamerConfig {
        extent_size: 64 * 1024,
        shards: 2,
        grouping: GroupingStrategy::BlockedEr(BlockedErConfig {
            incremental: true,
            ..Default::default()
        }),
        ..Default::default()
    }
}

/// Random corpora with real consolidation structure (duplicates, swaps,
/// typos) so deltas produce genuine merges, dirty clusters, and reuse.
fn corpus_strategy() -> impl Strategy<Value = Vec<Record>> {
    prop::collection::vec((0u64..8, 0u8..4, 0u8..3), 0..60).prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (g, variant, p))| {
                let name = match variant {
                    0 => format!("Group{g} Title{g}"),
                    1 => format!("Title{g} Group{g}"),
                    2 => format!("Group{g} Titl{g}"),
                    _ => format!("Common Group{g} Title{g}"),
                };
                show(i as u64, &name, &format!("${}", 10 + u64::from(p)))
            })
            .collect()
    })
}

/// The fixed query battery run against every snapshot pair: one per
/// plan family (ordered probe, hash probe, columnar, aggregation, sort).
fn battery() -> Vec<Query> {
    vec![
        Query::filtered(Predicate::Gte("_members".into(), Value::Int(2)))
            .aggregate(Aggregate::Count),
        Query::filtered(Predicate::Eq("CHEAPEST_PRICE".into(), Value::from("$10")))
            .order_by("_key", Order::Asc)
            .project(vec!["SHOW_NAME"]),
        Query::filtered(Predicate::Contains("SHOW_NAME".into(), "title".into()))
            .aggregate(Aggregate::Count),
        Query::filtered(Predicate::True).aggregate(Aggregate::GroupBy("CHEAPEST_PRICE".into())),
        Query::filtered(Predicate::True).order_by("_members", Order::Desc).take(5),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn incrementally_synced_views_serve_identical_results(
        corpus in corpus_strategy(),
        cut_bytes in prop::collection::vec(any::<u8>(), 1..5),
    ) {
        // Segments between sorted cut points: a prefix plus 1..=5 deltas.
        let mut cuts: Vec<usize> = cut_bytes
            .iter()
            .map(|&b| (usize::from(b) * corpus.len()) / 256)
            .collect();
        cuts.sort_unstable();
        let prefix = &corpus[..cuts[0]];
        let mut batches: Vec<&[Record]> = Vec::new();
        for w in cuts.windows(2) {
            batches.push(&corpus[w[0]..w[1]]);
        }
        batches.push(&corpus[*cuts.last().unwrap()..]);

        let spec = IndexSpec::default().hash_on("CHEAPEST_PRICE").ordered_on("_members");
        let mut dt = DataTamer::new(config());
        let mut plan = PipelinePlan::new();
        if !prefix.is_empty() {
            plan = plan.structured("s1", prefix);
        }
        dt.run(plan).expect("seed run");

        // The long-lived view: one full build at seed time, then strictly
        // incremental syncs driven by each delta's dirty-cluster set.
        let mut view = CollectionView::new(spec.clone());
        {
            let ctx = dt.context();
            view.sync(&ctx.fused, &ctx.fusion_groups, ctx.fused_changed.as_deref());
        }
        for b in &batches {
            dt.consolidate_delta(b).expect("delta ingest");
            let ctx = dt.context();
            view.sync(&ctx.fused, &ctx.fusion_groups, ctx.fused_changed.as_deref());
        }

        let m = view.maintenance();
        prop_assert_eq!(m.full_builds, 1, "delta syncs must never rebuild: {:?}", m);
        prop_assert_eq!(m.delta_syncs, batches.len() as u64, "{:?}", m);

        // A control view built from scratch over the final fused output.
        let mut fresh = CollectionView::new(spec);
        let ctx = dt.context();
        fresh.sync(&ctx.fused, &ctx.fusion_groups, None);

        let inc_snap = view.snapshot(Vec::new());
        let fresh_snap = fresh.snapshot(Vec::new());
        prop_assert_eq!(
            format!("{:?}", inc_snap.entities()),
            format!("{:?}", fresh_snap.entities()),
            "incrementally synced view holds different entities"
        );

        let serial = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let wide = ThreadPoolBuilder::new().num_threads(8).build().unwrap();
        for q in battery() {
            let want = fp(&execute_oracle(ctx.fused.as_slice(), &q));
            for mode in [ScanMode::Auto, ScanMode::Columnar, ScanMode::FullScan] {
                let a = serial.install(|| fp(&inc_snap.execute_as(&q, mode).result));
                let b = wide.install(|| fp(&inc_snap.execute_as(&q, mode).result));
                let c = wide.install(|| fp(&fresh_snap.execute_as(&q, mode).result));
                prop_assert_eq!(&a, &want, "incremental {:?} (serial) diverged: {:?}", mode, q);
                prop_assert_eq!(&b, &want, "incremental {:?} (wide) diverged: {:?}", mode, q);
                prop_assert_eq!(&c, &want, "fresh {:?} diverged: {:?}", mode, q);
            }
        }
    }
}
