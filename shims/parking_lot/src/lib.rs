//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the tiny slice of the parking_lot API the engine uses: `RwLock` and
//! `Mutex` whose guards are returned directly (no `Result` poisoning).
//! Poisoned std locks are recovered transparently — a panicking writer in
//! one test must not cascade into unrelated assertions, matching
//! parking_lot's own non-poisoning semantics.

use std::sync::PoisonError;

/// A reader-writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-access guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-access guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire exclusive access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire shared access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire exclusive access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A mutex with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert!(lock.try_read().is_some());
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let lock = std::sync::Arc::new(RwLock::new(0));
        let l2 = lock.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*lock.read(), 0, "read after writer panic must not fail");
    }
}
