//! Offline stand-in for the `proptest` crate.
//!
//! Implements the strategy combinators and macros this workspace's property
//! tests use — `proptest!`, `prop_oneof!`, `prop_assert*!`, `prop_assume!`,
//! `Just`, `any`, regex-subset string strategies, numeric ranges, tuples,
//! `prop::collection::{vec, hash_set}`, `prop_map`, and `prop_recursive` —
//! over a deterministic seeded RNG.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its case number and the run
//!   seed; rerun with `PROPTEST_SEED=<seed>` to reproduce.
//! * **Regex strategies** support the subset used here: char classes
//!   (`[a-z0-9' €$%.,_-]`, ranges + literals), `.`, and `{n}` / `{m,n}`
//!   quantifiers over a whole-string class pattern.
//! * Collection sizes are sampled uniformly; `hash_set` deduplicates after
//!   generation, so small target sizes can come up short of the upper
//!   bound (bounds stay respected).

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof,
        proptest, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic generator driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded constructor.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sampling bound");
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Config / runner / failure plumbing
// ---------------------------------------------------------------------------

/// Subset of proptest's config: number of cases per property.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
    /// `prop_assert*!` failed with this message.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure with a formatted message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Drives the cases of one property (used by the `proptest!` expansion).
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    seed: u64,
}

impl TestRunner {
    /// Build from a config and the property's name (mixed into the seed).
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        let seed = match std::env::var("PROPTEST_SEED").ok().and_then(|s| s.parse().ok()) {
            Some(s) => s,
            None => {
                // Deterministic per-property default: tests are stable
                // across runs and differ from one another.
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for b in name.bytes() {
                    h ^= u64::from(b);
                    h = h.wrapping_mul(0x0000_0100_0000_01B3);
                }
                h
            }
        };
        TestRunner { config, seed }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// The seed in use (printed on failure).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// RNG for one case.
    pub fn rng_for(&self, case: u32) -> TestRng {
        TestRng::new(self.seed.wrapping_add(0x0001_0000_0007_u64.wrapping_mul(u64::from(case) + 1)))
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Filter generated values (retries until `f` passes, giving up after a
    /// bounded number of attempts by returning the last candidate).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        f: F,
    ) -> FilterStrategy<Self, F>
    where
        Self: Sized,
    {
        FilterStrategy { base: self, f }
    }

    /// Build a recursive strategy: `self` generates leaves, `branch` wraps
    /// an inner strategy into one nesting level, `depth` bounds nesting.
    fn prop_recursive<S, F>(self, depth: u32, _size: u32, _branch_size: u32, branch: F) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S + 'static,
    {
        let base: BoxedStrategy<Self::Value> = self.boxed();
        let mut tower = base.clone();
        for _ in 0..depth.max(1) {
            // Each level chooses leaf-or-branch so every depth can
            // terminate; deeper towers allow more nesting.
            let next = branch(tower).boxed();
            tower = Union { options: vec![base.clone(), next] }.boxed();
        }
        tower
    }

    /// Type-erase into a cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe view of [`Strategy`] (implementation detail of boxing).
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A cloneable, type-erased strategy handle.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

impl<T> fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// `prop_filter` adapter.
pub struct FilterStrategy<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for FilterStrategy<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.base.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates in a row");
    }
}

/// Uniform choice between same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the options (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------------

/// Strategy for "any value of `T`" ([`any`]).
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

/// `any::<T>()`: full-domain strategy with edge-case bias for integers.
pub fn any<T>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

impl Strategy for AnyStrategy<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                // 1-in-8 edge case, 3-in-8 small magnitude, else raw bits.
                match rng.below(8) {
                    0 => [0 as $t, 1 as $t, <$t>::MIN, <$t>::MAX]
                        [rng.below(4) as usize],
                    1..=3 => (rng.next_u64() % 32) as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

// Tuple strategies (generated left to right).
macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

// ---------------------------------------------------------------------------
// Regex-subset string strategies
// ---------------------------------------------------------------------------

/// One parsed atom of the pattern subset: the alphabet plus a length range.
#[derive(Debug, Clone)]
struct CharClassPattern {
    alphabet: Vec<char>,
    min_len: usize,
    max_len: usize,
}

thread_local! {
    // Pattern parses are cached: collection strategies re-generate the same
    // &'static str pattern thousands of times per test.
    static PATTERN_CACHE: RefCell<Vec<(String, CharClassPattern)>> = const { RefCell::new(Vec::new()) };
}

/// `.` alphabet: printable ASCII plus a few multi-byte characters so
/// Unicode handling stays exercised.
fn any_char_alphabet() -> Vec<char> {
    let mut chars: Vec<char> = (' '..='~').collect();
    chars.extend(['é', 'Ж', '€', '中', '𝐀']);
    chars
}

fn parse_pattern(pattern: &str) -> CharClassPattern {
    let mut chars = pattern.chars().peekable();
    let mut alphabet: Vec<char>;
    match chars.next() {
        Some('[') => {
            let mut pending: Vec<char> = Vec::new();
            loop {
                match chars.next() {
                    Some(']') => break,
                    Some('-') if !pending.is_empty() && chars.peek().is_some_and(|&c| c != ']') => {
                        let lo = *pending.last().unwrap();
                        let hi = chars.next().unwrap();
                        assert!(lo <= hi, "bad class range {lo}-{hi} in {pattern:?}");
                        // `lo` itself is already pending; add the rest.
                        let mut c = lo;
                        while c < hi {
                            c = char::from_u32(c as u32 + 1).expect("class range");
                            pending.push(c);
                        }
                    }
                    Some('\\') => pending.push(chars.next().expect("escape in class")),
                    Some(c) => pending.push(c),
                    None => panic!("unterminated char class in {pattern:?}"),
                }
            }
            alphabet = pending;
        }
        Some('.') => alphabet = any_char_alphabet(),
        other => panic!(
            "unsupported pattern {pattern:?} (shim supports `[class]` or `.` with optional {{m,n}}): {other:?}"
        ),
    }
    assert!(!alphabet.is_empty(), "empty alphabet in {pattern:?}");
    alphabet.sort_unstable();
    alphabet.dedup();

    let (min_len, max_len) = match chars.next() {
        None => (1, 1),
        Some('{') => {
            let rest: String = chars.collect();
            let body = rest.strip_suffix('}').expect("unterminated quantifier");
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("quantifier min"),
                    n.trim().parse().expect("quantifier max"),
                ),
                None => {
                    let n = body.trim().parse().expect("quantifier count");
                    (n, n)
                }
            }
        }
        Some(c) => panic!("unsupported pattern tail {c:?} in {pattern:?}"),
    };
    assert!(min_len <= max_len, "inverted quantifier in {pattern:?}");
    CharClassPattern { alphabet, min_len, max_len }
}

fn cached_pattern(pattern: &str) -> CharClassPattern {
    PATTERN_CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        if let Some((_, parsed)) = cache.iter().find(|(p, _)| p == pattern) {
            return parsed.clone();
        }
        let parsed = parse_pattern(pattern);
        cache.push((pattern.to_owned(), parsed.clone()));
        parsed
    })
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let parsed = cached_pattern(pattern);
    let len = parsed.min_len
        + rng.below((parsed.max_len - parsed.min_len + 1) as u64) as usize;
    (0..len)
        .map(|_| parsed.alphabet[rng.below(parsed.alphabet.len() as u64) as usize])
        .collect()
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

// ---------------------------------------------------------------------------
// prop:: namespace (num, collection)
// ---------------------------------------------------------------------------

pub mod prop {
    //! The `prop::` namespace mirroring real proptest's module layout.

    pub mod num {
        //! Numeric sub-strategies.

        pub mod f64 {
            //! `f64`-specific strategies.
            use crate::{Strategy, TestRng};

            /// Generates normal (non-zero, non-subnormal, finite) floats.
            #[derive(Debug, Clone, Copy)]
            pub struct NormalF64;

            /// Normal floats of either sign.
            pub const NORMAL: NormalF64 = NormalF64;

            impl Strategy for NormalF64 {
                type Value = f64;

                fn generate(&self, rng: &mut TestRng) -> f64 {
                    loop {
                        // Mix raw bit patterns (huge dynamic range) with
                        // human-scale values so both regimes are covered.
                        let candidate = if rng.below(2) == 0 {
                            f64::from_bits(rng.next_u64())
                        } else {
                            (rng.unit_f64() - 0.5) * 2e6
                        };
                        if candidate.is_normal() {
                            return candidate;
                        }
                    }
                }
            }
        }
    }

    pub mod collection {
        //! Collection strategies.
        use crate::{Strategy, TestRng};
        use std::collections::HashSet;
        use std::hash::Hash;

        /// Size specification: exact or a half-open range.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            min: usize,
            max_exclusive: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { min: n, max_exclusive: n + 1 }
            }
        }

        impl From<core::ops::Range<usize>> for SizeRange {
            fn from(r: core::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty collection size range");
                SizeRange { min: r.start, max_exclusive: r.end }
            }
        }

        impl SizeRange {
            fn sample(self, rng: &mut TestRng) -> usize {
                self.min + rng.below((self.max_exclusive - self.min) as u64) as usize
            }
        }

        /// `Vec<T>` strategy with sizes from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }

        /// `HashSet<T>` strategy; sizes are pre-dedup targets.
        pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
        where
            S: Strategy,
            S::Value: Hash + Eq,
        {
            HashSetStrategy { element, size: size.into() }
        }

        /// Strategy returned by [`vec`].
        #[derive(Debug)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.size.sample(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Strategy returned by [`hash_set`].
        #[derive(Debug)]
        pub struct HashSetStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S> Strategy for HashSetStrategy<S>
        where
            S: Strategy,
            S::Value: Hash + Eq,
        {
            type Value = HashSet<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
                let n = self.size.sample(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Define property tests (the shim's `proptest!` block form).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::core::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $(
        #[test]
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let runner = $crate::TestRunner::new(config, stringify!($name));
            for case in 0..runner.cases() {
                let mut rng = runner.rng_for(case);
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property {} failed at case {}/{} (seed {}; rerun with PROPTEST_SEED={}):\n{}",
                            stringify!($name), case, runner.cases(), runner.seed(),
                            runner.seed(), msg,
                        );
                    }
                }
            }
        }
    )*};
}

/// Uniform choice among strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Assert a condition inside a property (fails the case, no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*), l, r
        );
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
}

/// Skip the case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn pattern_parsing_shapes() {
        let mut rng = TestRng::new(5);
        for _ in 0..200 {
            let s = generate_from_pattern("[a-z]{1,6}", &mut rng);
            assert!((1..=6).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = generate_from_pattern("[a-c]", &mut rng);
            assert_eq!(t.chars().count(), 1);
            assert!("abc".contains(&t));
            let u = generate_from_pattern("[a-zA-Z0-9' €$%.,]{0,24}", &mut rng);
            assert!(u.chars().count() <= 24);
            let dot = generate_from_pattern(".{0,60}", &mut rng);
            assert!(dot.chars().count() <= 60);
        }
    }

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..500 {
            let (a, b) = (0u32..64, -10.0f64..10.0).generate(&mut rng);
            assert!(a < 64);
            assert!((-10.0..10.0).contains(&b));
            let c = (2usize..8).generate(&mut rng);
            assert!((2..8).contains(&c));
            let d = (1..=12u8).generate(&mut rng);
            assert!((1..=12).contains(&d));
        }
    }

    #[test]
    fn collections_and_union() {
        let mut rng = TestRng::new(2);
        let v = prop::collection::vec("[a-z]{1,4}", 0..10).generate(&mut rng);
        assert!(v.len() < 10);
        let exact = prop::collection::vec(any::<bool>(), 15).generate(&mut rng);
        assert_eq!(exact.len(), 15);
        let hs = prop::collection::hash_set("[a-z]{1,5}", 0..10).generate(&mut rng);
        assert!(hs.len() < 10);
        let u = prop_oneof![Just(1i64), Just(2), 10i64..20];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(u.generate(&mut rng));
        }
        assert!(seen.contains(&1) && seen.contains(&2) && seen.iter().any(|&x| x >= 10));
    }

    #[test]
    fn recursion_terminates_and_nests() {
        #[derive(Debug, Clone, PartialEq)]
        enum V {
            Leaf(i64),
            Node(Vec<V>),
        }
        let strat = (0i64..10).prop_map(V::Leaf).prop_recursive(3, 16, 3, |inner| {
            prop::collection::vec(inner, 0..3).prop_map(V::Node)
        });
        let mut rng = TestRng::new(3);
        let mut saw_node = false;
        for _ in 0..300 {
            match strat.generate(&mut rng) {
                V::Leaf(n) => assert!((0..10).contains(&n)),
                V::Node(_) => saw_node = true,
            }
        }
        assert!(saw_node, "recursive branch never taken");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn macro_wires_args_and_asserts(a in 0i64..100, s in "[a-z]{1,8}") {
            prop_assert!(a >= 0);
            prop_assert!(a < 100, "a out of range: {}", a);
            prop_assert_eq!(s.len(), s.chars().count());
            prop_assume!(a != 5);
            prop_assert_ne!(a, 5);
        }
    }

    proptest! {
        #[test]
        fn default_config_form_works(flag in any::<bool>()) {
            prop_assert_eq!(flag as u8 <= 1, true);
        }
    }
}
