//! Offline stand-in for the `criterion` crate.
//!
//! Keeps the bench files' API (`criterion_group!` / `criterion_main!`,
//! benchmark groups, `BenchmarkId`, `Throughput`, `Bencher::iter`) while
//! measuring with plain wall-clock sampling: a warm-up call, then up to
//! `sample_size` timed samples (time-capped per benchmark).
//!
//! Reporting is robust-statistics flavoured, because the target box is a
//! noisy shared core: samples whose modified z-score
//! `0.6745·|x − median| / MAD` exceeds 3.5 (the same rule the cleaning
//! crate's outlier detector uses) are rejected before the summary, and the
//! summary carries both a robust spread (the MAD itself) and the classic
//! standard deviation of the retained samples — so an A/B delta can be
//! read against the benchmark's own noise band instead of a guess.
//!
//! Set `CRITERION_OUTPUT_JSON=/path/file.json` to append one JSON object
//! per benchmark: `{"id", "median_ns", "mad_ns", "stddev_ns", "min_ns",
//! "max_ns", "samples", "rejected_samples", "iters_per_sample",
//! "throughput": {...}|null}` (`median_ns`/`stddev_ns` are computed over
//! the retained samples, `mad_ns`/`min_ns`/`max_ns` over all of them).

// This shim is the workspace's sanctioned clock user (clippy.toml
// disallows the constructors everywhere else).
#![allow(clippy::disallowed_methods)]

use std::io::Write as _;
use std::time::{Duration, Instant};

/// Per-benchmark wall-clock budget (samples stop early past this).
const SAMPLE_BUDGET: Duration = Duration::from_secs(3);

/// Work-unit annotation for throughput lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Function name + parameter (renders as `name/param`).
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { name: format!("{}/{}", name.into(), parameter) }
    }

    /// Parameter-only id (renders as the parameter).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { name: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// The timing loop handed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    iters_per_sample: u64,
}

impl Bencher {
    /// Time `routine`, collecting up to `sample_size` samples.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm-up and calibration: aim for >= ~10ms per sample so cheap
        // routines are not drowned by timer noise.
        let warm = Instant::now();
        std::hint::black_box(routine());
        let one = warm.elapsed().max(Duration::from_nanos(20));
        let iters = (Duration::from_millis(10).as_nanos() / one.as_nanos()).clamp(1, 1_000_000)
            as u64;
        self.iters_per_sample = iters;

        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.samples.push(t.elapsed() / iters as u32);
            if budget_start.elapsed() > SAMPLE_BUDGET {
                break;
            }
        }
    }
}

#[derive(Debug, Default)]
struct Report {
    median_ns: u128,
    mad_ns: u128,
    stddev_ns: u128,
    min_ns: u128,
    max_ns: u128,
    samples: usize,
    rejected_samples: usize,
    iters_per_sample: u64,
}

/// Modified z-score cutoff for sample rejection (median/MAD rule).
const OUTLIER_CUTOFF: f64 = 3.5;

fn median_of_sorted(ns: &[u128]) -> u128 {
    ns[ns.len() / 2]
}

/// Robust summary of one benchmark's samples: MAD-based outlier rejection
/// (modified z-score `0.6745·|x − median| / MAD > 3.5`), median and
/// standard deviation over the retained samples, MAD and min/max over all.
fn summarize(samples: &[Duration], iters_per_sample: u64) -> Report {
    let mut ns: Vec<u128> = samples.iter().map(Duration::as_nanos).collect();
    ns.sort_unstable();
    let raw_median = median_of_sorted(&ns);
    let mut deviations: Vec<u128> =
        ns.iter().map(|&x| x.abs_diff(raw_median)).collect();
    deviations.sort_unstable();
    let mad = median_of_sorted(&deviations);
    // MAD of 0 (degenerate or tiny sample sets) keeps everything: with no
    // spread estimate there is no basis for rejection.
    let kept: Vec<u128> = if mad == 0 {
        ns.clone()
    } else {
        ns.iter()
            .copied()
            .filter(|&x| 0.6745 * (x.abs_diff(raw_median) as f64) / (mad as f64) <= OUTLIER_CUTOFF)
            .collect()
    };
    let mean = kept.iter().sum::<u128>() as f64 / kept.len() as f64;
    let variance = kept
        .iter()
        .map(|&x| {
            let d = x as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / kept.len() as f64;
    Report {
        median_ns: median_of_sorted(&kept),
        mad_ns: mad,
        stddev_ns: variance.sqrt().round() as u128,
        min_ns: ns[0],
        max_ns: *ns.last().unwrap(),
        samples: ns.len(),
        rejected_samples: ns.len() - kept.len(),
        iters_per_sample,
    }
}

fn run_one(
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: impl FnOnce(&mut Bencher),
) {
    let mut b = Bencher { samples: Vec::new(), sample_size, iters_per_sample: 1 };
    f(&mut b);
    if b.samples.is_empty() {
        eprintln!("bench {id:<50} (no samples)");
        return;
    }
    let report = summarize(&b.samples, b.iters_per_sample);
    let per = |n: u64| -> String {
        if n == 0 || report.median_ns == 0 {
            return String::new();
        }
        let rate = n as f64 / (report.median_ns as f64 / 1e9);
        format!(" ({rate:.0}/s)")
    };
    let extra = match throughput {
        Some(Throughput::Elements(n)) => per(n),
        Some(Throughput::Bytes(n)) => per(n),
        None => String::new(),
    };
    let rejected = if report.rejected_samples > 0 {
        format!(" ({} outliers)", report.rejected_samples)
    } else {
        String::new()
    };
    eprintln!(
        "bench {id:<50} median {:>12} ±{}{extra}  [{} samples x {} iters{rejected}]",
        human_ns(report.median_ns),
        human_ns(report.mad_ns),
        report.samples,
        report.iters_per_sample,
    );
    if let Ok(path) = std::env::var("CRITERION_OUTPUT_JSON") {
        let tp = match throughput {
            Some(Throughput::Elements(n)) => format!("{{\"elements\":{n}}}"),
            Some(Throughput::Bytes(n)) => format!("{{\"bytes\":{n}}}"),
            None => "null".to_owned(),
        };
        let line = format!(
            "{{\"id\":{:?},\"median_ns\":{},\"mad_ns\":{},\"stddev_ns\":{},\"min_ns\":{},\"max_ns\":{},\"samples\":{},\"rejected_samples\":{},\"iters_per_sample\":{},\"throughput\":{}}}\n",
            id, report.median_ns, report.mad_ns, report.stddev_ns, report.min_ns,
            report.max_ns, report.samples, report.rejected_samples,
            report.iters_per_sample, tp,
        );
        if let Ok(mut file) =
            std::fs::OpenOptions::new().create(true).append(true).open(&path)
        {
            let _ = file.write_all(line.as_bytes());
        }
    }
}

fn human_ns(ns: u128) -> String {
    match ns {
        0..=999 => format!("{ns} ns"),
        1_000..=999_999 => format!("{:.2} us", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.2} ms", ns as f64 / 1e6),
        _ => format!("{:.3} s", ns as f64 / 1e9),
    }
}

/// A group of related benchmarks sharing sample size and throughput.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Work-units for subsequent benchmarks in this group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for compatibility; the shim's budget is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.name);
        let mut f = f;
        run_one(&full, self.sample_size, self.throughput, |b| f(b));
        self
    }

    /// Run one parameterised benchmark in the group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.name);
        run_one(&full, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Finish the group (prints nothing extra; exists for API parity).
    pub fn finish(&mut self) {}
}

/// The bench context mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Default samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for compatibility; the shim reads no CLI flags.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        id: &str,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(id, self.sample_size, None, |b| f(b));
        self
    }
}

/// Re-export so `use criterion::black_box` keeps working.
pub use std::hint::black_box;

/// Define a bench group function, in either criterion macro form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        group.bench_function("cheap", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("param", 5), &5u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| "x".repeat(4)));
    }

    criterion_group!(benches, quick);

    #[test]
    fn group_macro_runs() {
        benches();
    }

    criterion_group!(
        name = named;
        config = Criterion::default().sample_size(2);
        targets = quick
    );

    #[test]
    fn named_form_macro_runs() {
        named();
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).name, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").name, "x");
    }

    fn durations(ns: &[u64]) -> Vec<Duration> {
        ns.iter().map(|&n| Duration::from_nanos(n)).collect()
    }

    #[test]
    fn summarize_rejects_mad_outliers() {
        // A tight cluster with one scheduler spike: the spike must be
        // rejected, leaving the median and stddev on the cluster while the
        // raw min/max and sample count still tell the whole story.
        let samples = durations(&[100, 101, 99, 102, 100, 98, 5_000]);
        let report = summarize(&samples, 3);
        assert_eq!(report.rejected_samples, 1, "{report:?}");
        assert_eq!(report.median_ns, 100);
        assert_eq!(report.samples, 7);
        assert_eq!(report.max_ns, 5_000);
        assert_eq!(report.min_ns, 98);
        assert!(report.mad_ns <= 2, "robust spread ignores the spike: {report:?}");
        assert!(report.stddev_ns <= 2, "stddev over retained samples only: {report:?}");
        assert_eq!(report.iters_per_sample, 3);
    }

    #[test]
    fn summarize_keeps_everything_without_spread() {
        // MAD of 0 (constant samples) must not divide by zero or reject.
        let report = summarize(&durations(&[50, 50, 50, 50, 9_000]), 1);
        assert_eq!(report.mad_ns, 0);
        assert_eq!(report.rejected_samples, 0);
        assert_eq!(report.median_ns, 50);
        // And a clean spread rejects nothing.
        let clean = summarize(&durations(&[10, 11, 12, 13, 14]), 1);
        assert_eq!(clean.rejected_samples, 0);
        assert_eq!(clean.median_ns, 12);
        assert!(clean.stddev_ns >= 1);
    }

    #[test]
    fn summarize_single_sample() {
        let report = summarize(&durations(&[42]), 1);
        assert_eq!(report.median_ns, 42);
        assert_eq!(report.samples, 1);
        assert_eq!(report.rejected_samples, 0);
        assert_eq!(report.stddev_ns, 0);
    }
}
