//! Offline stand-in for the `bytes` crate.
//!
//! Implements exactly the `Buf` / `BufMut` surface the storage encoder
//! uses: byte-at-a-time reads/writes, big-endian `f64`, slice copies, and
//! remaining-length queries. `Buf` is implemented for `&[u8]` (the reader
//! advances the slice itself) and `BufMut` for `Vec<u8>`, matching how the
//! real crate is used throughout `datatamer-storage`.

/// Read-side cursor over a byte source.
///
/// Mirrors `bytes::Buf`: reads consume from the front and panic when the
/// source is exhausted (callers guard with [`Buf::has_remaining`]).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Consume and return one byte.
    fn get_u8(&mut self) -> u8;

    /// Consume `dst.len()` bytes into `dst`.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Consume and return a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        f64::from_be_bytes(raw)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let (first, rest) = self.split_first().expect("buffer exhausted");
        let b = *first;
        *self = rest;
        b
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer exhausted");
        let (head, rest) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = rest;
    }

    fn advance(&mut self, n: usize) {
        assert!(self.len() >= n, "buffer exhausted");
        *self = &self[n..];
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }

    fn get_u8(&mut self) -> u8 {
        (**self).get_u8()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        (**self).copy_to_slice(dst)
    }

    fn advance(&mut self, n: usize) {
        (**self).advance(n)
    }
}

/// Write-side sink for encoded bytes.
///
/// Mirrors `bytes::BufMut` for the growable-vector case — writes append.
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, b: u8);

    /// Append a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, b: u8) {
        self.push(b);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    fn put_u8(&mut self, b: u8) {
        (**self).put_u8(b)
    }

    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u8_f64_slice() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u8(7);
        out.put_f64(3.5);
        out.put_slice(b"abc");
        let mut r: &[u8] = &out;
        assert_eq!(r.remaining(), 12);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_f64(), 3.5);
        let mut dst = [0u8; 3];
        r.copy_to_slice(&mut dst);
        assert_eq!(&dst, b"abc");
        assert!(!r.has_remaining());
    }

    #[test]
    fn advance_skips() {
        let mut r: &[u8] = &[1, 2, 3, 4];
        r.advance(2);
        assert_eq!(r.get_u8(), 3);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn reading_past_end_panics() {
        let mut r: &[u8] = &[];
        let _ = r.get_u8();
    }
}
