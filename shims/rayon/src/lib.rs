//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no registry access, so this crate provides the
//! slice of rayon's API the workspace uses, executed as order-preserving
//! chunked fork-join on `std::thread::scope`:
//!
//! * `slice.par_iter()` / `vec.into_par_iter()` / `(a..b).into_par_iter()`
//!   with `map`, `filter_map`, `filter`, `flat_map`, `for_each`, `sum`,
//!   `count`, `max`, and `collect::<Vec<_>>()`;
//! * `slice.par_chunks(n)`;
//! * `ThreadPoolBuilder::new().num_threads(n).build()` and
//!   `ThreadPool::install(..)` — the installed width applies to every
//!   parallel call made inside the closure (thread-local), which is what
//!   the serial-vs-parallel determinism tests rely on;
//! * `current_num_threads()`.
//!
//! **Determinism contract:** every combinator preserves input order exactly
//! — worker outputs are concatenated in chunk order — so a 1-thread and an
//! N-thread run of the same pipeline produce identical output. Side-effect
//! order in `for_each` is *not* specified, matching real rayon.

use std::cell::Cell;

pub mod prelude {
    //! One-stop imports, mirroring `rayon::prelude`.
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
        ParallelIterator, ParallelSlice,
    };
}

pub mod iter {
    //! Namespace compatibility with `rayon::iter`.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

thread_local! {
    /// Width installed by [`ThreadPool::install`]; `0` = not installed.
    static INSTALLED_WIDTH: Cell<usize> = const { Cell::new(0) };
}

/// Number of worker threads parallel calls on this thread will use.
pub fn current_num_threads() -> usize {
    let installed = INSTALLED_WIDTH.with(Cell::get);
    if installed > 0 {
        return installed;
    }
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(usize::from).unwrap_or(1)
}

/// Error type for [`ThreadPoolBuilder::build`] (construction cannot fail
/// here; the type exists for signature compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// New builder with default width.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fix the worker count (0 = default width, as in rayon).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Build the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let width = match self.num_threads {
            Some(0) | None => {
                std::thread::available_parallelism().map(usize::from).unwrap_or(1)
            }
            Some(n) => n,
        };
        Ok(ThreadPool { width })
    }
}

/// A "pool" fixing the parallel width for closures run via [`Self::install`].
///
/// Threads are spawned per parallel call (scoped), not kept warm; what the
/// pool really carries is the width.
#[derive(Debug)]
pub struct ThreadPool {
    width: usize,
}

impl ThreadPool {
    /// Run `f` with this pool's width applied to every parallel call inside.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = INSTALLED_WIDTH.with(|w| w.replace(self.width));
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_WIDTH.with(|w| w.set(self.0));
            }
        }
        let _restore = Restore(prev);
        f()
    }

    /// This pool's width.
    pub fn current_num_threads(&self) -> usize {
        self.width
    }
}

/// Run the pipeline `p` over its index space: one contiguous chunk per
/// worker, outputs concatenated in chunk order (order-preserving).
fn execute<P: ParallelIterator>(p: P) -> Vec<P::Item> {
    let len = p.pipeline_len();
    let threads = current_num_threads().max(1);
    if threads == 1 || len <= 1 {
        let mut out = Vec::with_capacity(len);
        for i in 0..len {
            p.produce(i, &mut out);
        }
        return out;
    }
    let workers = threads.min(len);
    let chunk = len.div_ceil(workers);
    let p = &p;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let lo = w * chunk;
                let hi = (lo + chunk).min(len);
                scope.spawn(move || {
                    // Nested parallel calls inside a worker run inline —
                    // the team is already saturated (real rayon shares one
                    // pool; spawning width² threads would oversubscribe).
                    INSTALLED_WIDTH.with(|width| width.set(1));
                    let mut out = Vec::new();
                    for i in lo..hi {
                        p.produce(i, &mut out);
                    }
                    out
                })
            })
            .collect();
        let mut out = Vec::with_capacity(len);
        for h in handles {
            out.extend(h.join().expect("parallel worker panicked"));
        }
        out
    })
}

/// The parallel-iterator surface (rayon's `ParallelIterator`), modelled as
/// an indexed pipeline: stages compose per-index producers, terminals
/// execute the composition once across a scoped thread team.
pub trait ParallelIterator: Sized + Sync {
    /// Item type flowing out of this stage.
    type Item: Send;

    /// Number of source indexes driving the pipeline.
    fn pipeline_len(&self) -> usize;

    /// Produce the outputs for source index `i` into `out`.
    fn produce(&self, i: usize, out: &mut Vec<Self::Item>);

    /// Transform each item.
    fn map<R: Send, F: Fn(Self::Item) -> R + Sync>(self, f: F) -> Map<Self, F> {
        Map { base: self, f }
    }

    /// Transform and filter in one pass.
    fn filter_map<R: Send, F: Fn(Self::Item) -> Option<R> + Sync>(
        self,
        f: F,
    ) -> FilterMap<Self, F> {
        FilterMap { base: self, f }
    }

    /// Keep items satisfying the predicate.
    fn filter<F: Fn(&Self::Item) -> bool + Sync>(self, f: F) -> Filter<Self, F> {
        Filter { base: self, f }
    }

    /// Map each item to many.
    fn flat_map<R: Send, I: IntoIterator<Item = R>, F: Fn(Self::Item) -> I + Sync>(
        self,
        f: F,
    ) -> FlatMap<Self, F> {
        FlatMap { base: self, f }
    }

    /// Run `f` on every item (effect order unspecified, as in rayon).
    fn for_each<F: Fn(Self::Item) + Sync>(self, f: F) {
        execute(Map { base: self, f: |item| f(item) });
    }

    /// Collect results in source order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_ordered(execute(self))
    }

    /// Sum the items in source order.
    fn sum<S: std::iter::Sum<Self::Item>>(self) -> S {
        execute(self).into_iter().sum()
    }

    /// Count the items.
    fn count(self) -> usize {
        execute(self).len()
    }

    /// Maximum item, if any.
    fn max(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        execute(self).into_iter().max()
    }

    /// Left-fold the ordered items from `identity()` (the shim keeps
    /// rayon's signature but reduces in source order, which is a valid
    /// refinement of rayon's unspecified grouping).
    fn reduce<F: Fn(Self::Item, Self::Item) -> Self::Item + Sync>(
        self,
        identity: impl Fn() -> Self::Item,
        op: F,
    ) -> Self::Item {
        execute(self).into_iter().fold(identity(), &op)
    }
}

/// `map` stage.
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, F, R> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    F: Fn(I::Item) -> R + Sync,
    R: Send,
{
    type Item = R;

    fn pipeline_len(&self) -> usize {
        self.base.pipeline_len()
    }

    fn produce(&self, i: usize, out: &mut Vec<R>) {
        let mut tmp = Vec::new();
        self.base.produce(i, &mut tmp);
        out.extend(tmp.into_iter().map(&self.f));
    }
}

/// `filter_map` stage.
pub struct FilterMap<I, F> {
    base: I,
    f: F,
}

impl<I, F, R> ParallelIterator for FilterMap<I, F>
where
    I: ParallelIterator,
    F: Fn(I::Item) -> Option<R> + Sync,
    R: Send,
{
    type Item = R;

    fn pipeline_len(&self) -> usize {
        self.base.pipeline_len()
    }

    fn produce(&self, i: usize, out: &mut Vec<R>) {
        let mut tmp = Vec::new();
        self.base.produce(i, &mut tmp);
        out.extend(tmp.into_iter().filter_map(&self.f));
    }
}

/// `filter` stage.
pub struct Filter<I, F> {
    base: I,
    f: F,
}

impl<I, F> ParallelIterator for Filter<I, F>
where
    I: ParallelIterator,
    F: Fn(&I::Item) -> bool + Sync,
{
    type Item = I::Item;

    fn pipeline_len(&self) -> usize {
        self.base.pipeline_len()
    }

    fn produce(&self, i: usize, out: &mut Vec<I::Item>) {
        let mut tmp = Vec::new();
        self.base.produce(i, &mut tmp);
        out.extend(tmp.into_iter().filter(|t| (self.f)(t)));
    }
}

/// `flat_map` stage.
pub struct FlatMap<I, F> {
    base: I,
    f: F,
}

impl<I, F, It, R> ParallelIterator for FlatMap<I, F>
where
    I: ParallelIterator,
    F: Fn(I::Item) -> It + Sync,
    It: IntoIterator<Item = R>,
    R: Send,
{
    type Item = R;

    fn pipeline_len(&self) -> usize {
        self.base.pipeline_len()
    }

    fn produce(&self, i: usize, out: &mut Vec<R>) {
        let mut tmp = Vec::new();
        self.base.produce(i, &mut tmp);
        out.extend(tmp.into_iter().flat_map(&self.f));
    }
}

/// Collection targets for [`ParallelIterator::collect`].
pub trait FromParallelIterator<T> {
    /// Build from items already in source order.
    fn from_ordered(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered(items: Vec<T>) -> Self {
        items
    }
}

impl<T: std::hash::Hash + Eq> FromParallelIterator<T> for std::collections::HashSet<T> {
    fn from_ordered(items: Vec<T>) -> Self {
        items.into_iter().collect()
    }
}

impl<K: Ord, V> FromParallelIterator<(K, V)> for std::collections::BTreeMap<K, V> {
    fn from_ordered(items: Vec<(K, V)>) -> Self {
        items.into_iter().collect()
    }
}

/// Borrowing root over a slice.
pub struct SliceIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;

    fn pipeline_len(&self) -> usize {
        self.items.len()
    }

    fn produce(&self, i: usize, out: &mut Vec<&'a T>) {
        out.push(&self.items[i]);
    }
}

/// Chunking root over a slice ([`ParallelSlice::par_chunks`]).
pub struct ChunksIter<'a, T> {
    items: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParallelIterator for ChunksIter<'a, T> {
    type Item = &'a [T];

    fn pipeline_len(&self) -> usize {
        self.items.len().div_ceil(self.size)
    }

    fn produce(&self, i: usize, out: &mut Vec<&'a [T]>) {
        let lo = i * self.size;
        let hi = (lo + self.size).min(self.items.len());
        out.push(&self.items[lo..hi]);
    }
}

/// Owning root over a `Vec` (items clone out per index so workers can share
/// the buffer; use `par_iter()` when borrowing suffices).
pub struct VecIter<T> {
    items: Vec<T>,
}

impl<T: Clone + Send + Sync> ParallelIterator for VecIter<T> {
    type Item = T;

    fn pipeline_len(&self) -> usize {
        self.items.len()
    }

    fn produce(&self, i: usize, out: &mut Vec<T>) {
        out.push(self.items[i].clone());
    }
}

/// Root over an integer range.
pub struct RangeIter {
    start: usize,
    len: usize,
}

impl ParallelIterator for RangeIter {
    type Item = usize;

    fn pipeline_len(&self) -> usize {
        self.len
    }

    fn produce(&self, i: usize, out: &mut Vec<usize>) {
        out.push(self.start + i);
    }
}

/// `.par_iter()` on borrowed collections.
pub trait IntoParallelRefIterator<'a> {
    /// The root stage type produced.
    type Iter: ParallelIterator;

    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = SliceIter<'a, T>;

    fn par_iter(&'a self) -> Self::Iter {
        SliceIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = SliceIter<'a, T>;

    fn par_iter(&'a self) -> Self::Iter {
        SliceIter { items: self }
    }
}

/// `.into_par_iter()` on owned collections and ranges.
pub trait IntoParallelIterator {
    /// The root stage type produced.
    type Iter: ParallelIterator;

    /// Owning parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Clone + Send + Sync> IntoParallelIterator for Vec<T> {
    type Iter = VecIter<T>;

    fn into_par_iter(self) -> Self::Iter {
        VecIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = RangeIter;

    fn into_par_iter(self) -> Self::Iter {
        RangeIter { start: self.start, len: self.end.saturating_sub(self.start) }
    }
}

/// `.par_iter_mut()` on mutable collections.
///
/// Mutable iteration cannot go through the shared index-based pipeline, so
/// it gets its own two-stage chain (`MutRoot` → optional `map` → terminal):
/// the slice splits into one disjoint chunk per worker via `chunks_mut`,
/// and map outputs concatenate in chunk order (order-preserving).
pub trait IntoParallelRefMutIterator<'a> {
    /// Item handed to closures.
    type Item: Send + 'a;

    /// Mutable parallel iterator.
    fn par_iter_mut(&'a mut self) -> MutRoot<'a, Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = T;

    fn par_iter_mut(&'a mut self) -> MutRoot<'a, T> {
        MutRoot { items: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = T;

    fn par_iter_mut(&'a mut self) -> MutRoot<'a, T> {
        MutRoot { items: self }
    }
}

/// Root of a mutable parallel chain.
pub struct MutRoot<'a, T> {
    items: &'a mut [T],
}

/// Distribute disjoint chunks of `items` across the thread team, running
/// `per_chunk` on each; per-chunk outputs come back in chunk order.
fn execute_mut<T: Send, R: Send>(
    items: &mut [T],
    per_chunk: impl Fn(&mut [T]) -> Vec<R> + Sync,
) -> Vec<R> {
    let len = items.len();
    let threads = current_num_threads().max(1);
    if threads == 1 || len <= 1 {
        return per_chunk(items);
    }
    let chunk = len.div_ceil(threads.min(len));
    let per_chunk = &per_chunk;
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks_mut(chunk)
            .map(|part| {
                scope.spawn(move || {
                    // See execute(): nested calls in workers run inline.
                    INSTALLED_WIDTH.with(|width| width.set(1));
                    per_chunk(part)
                })
            })
            .collect();
        let mut out = Vec::with_capacity(len);
        for h in handles {
            out.extend(h.join().expect("parallel worker panicked"));
        }
        out
    })
}

impl<'a, T: Send> MutRoot<'a, T> {
    /// Run `f` on every element.
    pub fn for_each<F: Fn(&mut T) + Sync>(self, f: F) {
        execute_mut(self.items, |part| {
            part.iter_mut().for_each(&f);
            Vec::<()>::new()
        });
    }

    /// Transform each element (by mutable reference) into an output.
    pub fn map<R: Send, F: Fn(&mut T) -> R + Sync>(self, f: F) -> MutMap<'a, T, F> {
        MutMap { items: self.items, f }
    }
}

/// `map` stage of a mutable parallel chain.
pub struct MutMap<'a, T, F> {
    items: &'a mut [T],
    f: F,
}

impl<'a, T: Send, F> MutMap<'a, T, F> {
    /// Collect outputs in source order.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(&mut T) -> R + Sync,
        C: FromParallelIterator<R>,
    {
        let f = self.f;
        C::from_ordered(execute_mut(self.items, |part| part.iter_mut().map(&f).collect()))
    }
}

/// `.par_chunks(n)` on slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over contiguous chunks of length `n` (last may be
    /// shorter).
    fn par_chunks(&self, n: usize) -> ChunksIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, n: usize) -> ChunksIter<'_, T> {
        assert!(n > 0, "chunk size must be positive");
        ChunksIter { items: self, size: n }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<i64> = (0..1000).collect();
        let doubled: Vec<i64> = xs.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn filter_map_chain_preserves_order() {
        let xs: Vec<i64> = (0..500).collect();
        let got: Vec<i64> = xs
            .par_iter()
            .map(|x| x + 1)
            .filter(|x| x % 3 == 0)
            .map(|x| x * 10)
            .collect();
        let want: Vec<i64> =
            (0..500).map(|x| x + 1).filter(|x| x % 3 == 0).map(|x| x * 10).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn closures_may_borrow_locals() {
        let base = [10i64, 20, 30];
        let idx: Vec<usize> = vec![2, 0, 1];
        let picked: Vec<i64> = idx.par_iter().map(|&i| base[i]).collect();
        assert_eq!(picked, vec![30, 10, 20]);
    }

    #[test]
    fn flat_map_and_sum() {
        let xs = vec![1usize, 2, 3];
        let total: usize = xs.par_iter().flat_map(|&x| 0..x).sum();
        assert_eq!(total, 4, "0..1, 0..2, 0..3 summed");
    }

    #[test]
    fn for_each_visits_everything() {
        let n = AtomicUsize::new(0);
        (0..997usize).into_par_iter().for_each(|_| {
            n.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(n.load(Ordering::Relaxed), 997);
    }

    #[test]
    fn par_chunks_sees_every_chunk() {
        let xs: Vec<i32> = (0..256).collect();
        let sizes: Vec<usize> = xs.par_chunks(100).map(|c| c.len()).collect();
        assert_eq!(sizes, vec![100, 100, 56]);
    }

    #[test]
    fn install_fixes_width() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        pool.install(|| assert_eq!(current_num_threads(), 1));
        let pool3 = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        pool3.install(|| assert_eq!(current_num_threads(), 3));
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn par_iter_mut_mutates_and_maps_in_order() {
        let mut xs: Vec<i64> = (0..1000).collect();
        xs.par_iter_mut().for_each(|x| *x *= 2);
        assert_eq!(xs[999], 1998);
        let reports: Vec<i64> = xs
            .par_iter_mut()
            .map(|x| {
                *x += 1;
                *x
            })
            .collect();
        assert_eq!(reports, (0..1000).map(|x| x * 2 + 1).collect::<Vec<_>>());
    }

    #[test]
    fn one_thread_equals_many() {
        let xs: Vec<u64> = (0..10_000).collect();
        let job = || -> Vec<u64> {
            xs.par_iter().filter_map(|&x| (x % 7 != 0).then_some(x * 3)).collect()
        };
        let serial = ThreadPoolBuilder::new().num_threads(1).build().unwrap().install(job);
        let wide = ThreadPoolBuilder::new().num_threads(8).build().unwrap().install(job);
        assert_eq!(serial, wide);
    }
}
