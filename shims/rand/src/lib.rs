//! Offline stand-in for the `rand` crate.
//!
//! Deterministic, seedable PRNG with the `random` / `random_range` /
//! `random_bool` surface the generators use. The engine is xoshiro256++
//! seeded through SplitMix64 — high-quality enough for synthetic-corpus
//! generation and, critically, identical across runs and platforms so
//! every experiment stays reproducible.

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The random-value methods, mirroring the `rand::Rng` extension surface.
///
/// (Named `RngExt` because that is how the codebase imports it.)
pub trait RngExt {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value of `T` (`f64` in `[0, 1)`, full-range ints).
    fn random<T: StandardDistribution>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from a range (`a..b` or `a..=b`).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

/// Map 64 random bits to `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types producible by [`RngExt::random`].
pub trait StandardDistribution: Sized {
    /// Draw one value.
    fn sample<R: RngExt>(rng: &mut R) -> Self;
}

impl StandardDistribution for f64 {
    fn sample<R: RngExt>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl StandardDistribution for u64 {
    fn sample<R: RngExt>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardDistribution for bool {
    fn sample<R: RngExt>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`RngExt::random_range`].
///
/// Blanket impls over [`SampleUniform`] keep type inference flowing from
/// the use site into the range literals (`DAYS[rng.random_range(0..7)]`
/// infers `usize`), exactly as real rand's single-impl design does.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample<R: RngExt>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: RngExt>(self, rng: &mut R) -> T {
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample<R: RngExt>(self, rng: &mut R) -> T {
        T::sample_between(*self.start(), *self.end(), true, rng)
    }
}

/// Types uniformly sampleable from a range.
pub trait SampleUniform: Sized {
    /// Uniform draw between `lo` and `hi` (`inclusive` selects `..=`).
    fn sample_between<R: RngExt>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

/// Unbiased bounded sample in `[0, bound)` via rejection sampling.
fn bounded(rng_next: &mut impl FnMut() -> u64, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample an empty range");
    if bound.is_power_of_two() {
        return rng_next() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng_next();
        if v < zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngExt>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128)
                    + if inclusive { 1 } else { 0 };
                assert!(span > 0, "empty range {lo}..{hi}");
                if span > u64::MAX as i128 {
                    return rng.next_u64() as $t;
                }
                let off = bounded(&mut || rng.next_u64(), span as u64);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngExt>(lo: f64, hi: f64, _inclusive: bool, rng: &mut R) -> f64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngExt, SeedableRng};

    /// Deterministic xoshiro256++ generator (the shim's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    Self::splitmix(&mut sm),
                    Self::splitmix(&mut sm),
                    Self::splitmix(&mut sm),
                    Self::splitmix(&mut sm),
                ],
            }
        }
    }

    impl RngExt for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.random_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.random_range(1..=12u8);
            assert!((1..=12).contains(&y));
            let z = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&z));
            let f = rng.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_and_bools() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut heads = 0;
        for _ in 0..10_000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            if rng.random_bool(0.5) {
                heads += 1;
            }
        }
        assert!((3_500..6_500).contains(&heads), "suspicious coin: {heads}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn range_endpoints_reachable() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[rng.random_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
